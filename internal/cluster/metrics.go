package cluster

import (
	"reflect"
	"strings"
	"sync/atomic"
	"time"
)

// Metrics aggregates execution counters for one cluster. All counters are
// updated atomically by concurrently running tasks.
//
// The byte counters measure data that actually crossed a (simulated) worker
// boundary and therefore paid the serialize/deserialize cost, mirroring
// where a real Spark deployment pays network and serialization cost.
//
// Every field must be an atomic.Int64 with an identically named int64 field
// on Snapshot: the snapshot/fold/render plumbing walks the fields by
// reflection, so adding a counter here (plus its Snapshot mirror) is the
// whole change — it cannot be silently dropped from String, Add or Sub.
type Metrics struct {
	StagesRun        atomic.Int64
	TasksRun         atomic.Int64
	ShuffleRecords   atomic.Int64
	ShuffleBytes     atomic.Int64
	RemoteFetchBytes atomic.Int64
	LocalFetchRows   atomic.Int64
	BroadcastBytes   atomic.Int64
	Iterations       atomic.Int64
	// SimNanos accumulates simulated elapsed time: per stage, the
	// maximum per-worker busy time (sequential mode) or the stage wall
	// time (parallel mode).
	SimNanos atomic.Int64
	// StageWallNanos accumulates real wall time spent inside stages;
	// subtracting it from end-to-end wall time isolates driver-side work.
	StageWallNanos atomic.Int64
	// TaskRetries counts task attempts killed by the fault injector and
	// replayed; always zero with chaos disabled.
	TaskRetries atomic.Int64
	// RowsReplayed counts rows re-fetched (partition fetch or shuffle
	// target) by retry attempts — the wasted data-movement work recovery
	// paid on top of the fault-free run.
	RowsReplayed atomic.Int64
	// RecoveredIterations counts partition-level rollbacks: a failed
	// attempt's cached-state mutations undone via Checkpoint/Restore before
	// replay (the paper's Section 6.1 "replay the current iteration" path).
	RecoveredIterations atomic.Int64
	// StaleReads counts rows consumed from delta batches older than the
	// BSP-fresh stamp (producer round + 1 < consumer round) under barrier-
	// relaxed execution; always zero in BSP mode.
	StaleReads atomic.Int64
	// SupersededRows counts incoming rows a relaxed merge discarded because
	// a fresher derivation already covered them — the wasted work barrier
	// relaxation trades for the removed barrier.
	SupersededRows atomic.Int64
	// BarrierWaitNanos accumulates time workers spent blocked on
	// synchronization: per BSP stage, the sum over active workers of
	// (slowest busy − own busy); under relaxed execution, measured
	// staleness-gate stalls.
	BarrierWaitNanos atomic.Int64
}

// stopwatch is the cluster's only sanctioned wall-clock access: timing
// instrumentation whose readings feed the metrics counters (SimNanos,
// StageWallNanos) and nothing else. Results, placement and iteration counts
// must never depend on a reading, which is why the simclock analyzer bans
// time.Now everywhere else in the engine and the two reads below carry the
// audit trail.
type stopwatch struct{ t0 time.Time }

//rasql:noalloc
func startStopwatch() stopwatch {
	//rasql:allow simclock -- metrics-only instrumentation; readings feed SimNanos/StageWallNanos, never results or placement
	return stopwatch{t0: time.Now()}
}

//rasql:noalloc
func (s stopwatch) elapsedNanos() int64 {
	//rasql:allow simclock -- metrics-only instrumentation; see startStopwatch
	return int64(time.Since(s.t0))
}

// Snapshot is a plain-value copy of the metrics at one instant. Fields
// mirror Metrics one-for-one by name (enforced by the reflection plumbing
// and the roundtrip tests).
type Snapshot struct {
	StagesRun           int64
	TasksRun            int64
	ShuffleRecords      int64
	ShuffleBytes        int64
	RemoteFetchBytes    int64
	LocalFetchRows      int64
	BroadcastBytes      int64
	Iterations          int64
	SimNanos            int64
	StageWallNanos      int64
	TaskRetries         int64
	RowsReplayed        int64
	RecoveredIterations int64
	StaleReads          int64
	SupersededRows      int64
	BarrierWaitNanos    int64
}

// counterNames caches the shared field names of Metrics and Snapshot, in
// declaration order, verified once at init so a field added to one struct
// but not the other fails fast instead of being silently dropped.
var counterNames = func() []string {
	mt := reflect.TypeOf(Metrics{})
	st := reflect.TypeOf(Snapshot{})
	if mt.NumField() != st.NumField() {
		panic("cluster: Metrics and Snapshot field counts diverge")
	}
	names := make([]string, mt.NumField())
	for i := range names {
		mf, sf := mt.Field(i), st.Field(i)
		if mf.Name != sf.Name {
			panic("cluster: Metrics/Snapshot field order diverges at " + mf.Name)
		}
		if mf.Type != reflect.TypeOf(atomic.Int64{}) || sf.Type.Kind() != reflect.Int64 {
			panic("cluster: counter " + mf.Name + " is not atomic.Int64/int64")
		}
		names[i] = mf.Name
	}
	return names
}()

// counter returns the i-th counter of m, by the shared field order.
func (m *Metrics) counter(i int) *atomic.Int64 {
	return reflect.ValueOf(m).Elem().Field(i).Addr().Interface().(*atomic.Int64)
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	sv := reflect.ValueOf(&s).Elem()
	for i := range counterNames {
		sv.Field(i).SetInt(m.counter(i).Load())
	}
	return s
}

// AddSnapshot folds a snapshot's counts into the metrics atomically —
// how a finished QueryContext folds its per-query counters into the
// cluster's lifetime totals.
func (m *Metrics) AddSnapshot(s Snapshot) {
	sv := reflect.ValueOf(s)
	for i := range counterNames {
		m.counter(i).Add(sv.Field(i).Int())
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	for i := range counterNames {
		m.counter(i).Store(0)
	}
}

// Add returns the counter-wise sum s + o (accumulating totals across runs).
func (s Snapshot) Add(o Snapshot) Snapshot { return s.combine(o, 1) }

// Sub returns the delta s - o, counter-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot { return s.combine(o, -1) }

func (s Snapshot) combine(o Snapshot, sign int64) Snapshot {
	out := s
	ov := reflect.ValueOf(&out).Elem()
	rv := reflect.ValueOf(o)
	for i := range counterNames {
		f := ov.Field(i)
		f.SetInt(f.Int() + sign*rv.Field(i).Int())
	}
	return out
}

// String renders the snapshot as one line. It walks the same reflected
// field list as Add/Sub, so every counter — present and future — appears,
// labelled with the lower-camel field name.
func (s Snapshot) String() string {
	var b strings.Builder
	sv := reflect.ValueOf(s)
	for i, name := range counterNames {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strings.ToLower(name[:1]))
		b.WriteString(name[1:])
		b.WriteByte('=')
		b.WriteString(itoa64(sv.Field(i).Int()))
	}
	return b.String()
}

// itoa64 is strconv.FormatInt(n, 10) without the import.
func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [21]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
