package cluster

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Metrics aggregates execution counters for one cluster. All counters are
// updated atomically by concurrently running tasks.
//
// The byte counters measure data that actually crossed a (simulated) worker
// boundary and therefore paid the serialize/deserialize cost, mirroring
// where a real Spark deployment pays network and serialization cost.
type Metrics struct {
	StagesRun        atomic.Int64
	TasksRun         atomic.Int64
	ShuffleRecords   atomic.Int64
	ShuffleBytes     atomic.Int64
	RemoteFetchBytes atomic.Int64
	LocalFetchRows   atomic.Int64
	BroadcastBytes   atomic.Int64
	Iterations       atomic.Int64
	// SimNanos accumulates simulated elapsed time: per stage, the
	// maximum per-worker busy time (sequential mode) or the stage wall
	// time (parallel mode).
	SimNanos atomic.Int64
	// StageWallNanos accumulates real wall time spent inside stages;
	// subtracting it from end-to-end wall time isolates driver-side work.
	StageWallNanos atomic.Int64
	// TaskRetries counts task attempts killed by the fault injector and
	// replayed; always zero with chaos disabled.
	TaskRetries atomic.Int64
	// RowsReplayed counts rows re-fetched (partition fetch or shuffle
	// target) by retry attempts — the wasted data-movement work recovery
	// paid on top of the fault-free run.
	RowsReplayed atomic.Int64
	// RecoveredIterations counts partition-level rollbacks: a failed
	// attempt's cached-state mutations undone via Checkpoint/Restore before
	// replay (the paper's Section 6.1 "replay the current iteration" path).
	RecoveredIterations atomic.Int64
}

// stopwatch is the cluster's only sanctioned wall-clock access: timing
// instrumentation whose readings feed the metrics counters (SimNanos,
// StageWallNanos) and nothing else. Results, placement and iteration counts
// must never depend on a reading, which is why the simclock analyzer bans
// time.Now everywhere else in the engine and the two reads below carry the
// audit trail.
type stopwatch struct{ t0 time.Time }

func startStopwatch() stopwatch {
	//rasql:allow simclock -- metrics-only instrumentation; readings feed SimNanos/StageWallNanos, never results or placement
	return stopwatch{t0: time.Now()}
}

func (s stopwatch) elapsedNanos() int64 {
	//rasql:allow simclock -- metrics-only instrumentation; see startStopwatch
	return int64(time.Since(s.t0))
}

// Snapshot is a plain-value copy of the metrics at one instant.
type Snapshot struct {
	StagesRun           int64
	TasksRun            int64
	ShuffleRecords      int64
	ShuffleBytes        int64
	RemoteFetchBytes    int64
	LocalFetchRows      int64
	BroadcastBytes      int64
	Iterations          int64
	SimNanos            int64
	StageWallNanos      int64
	TaskRetries         int64
	RowsReplayed        int64
	RecoveredIterations int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		StagesRun:           m.StagesRun.Load(),
		TasksRun:            m.TasksRun.Load(),
		ShuffleRecords:      m.ShuffleRecords.Load(),
		ShuffleBytes:        m.ShuffleBytes.Load(),
		RemoteFetchBytes:    m.RemoteFetchBytes.Load(),
		LocalFetchRows:      m.LocalFetchRows.Load(),
		BroadcastBytes:      m.BroadcastBytes.Load(),
		Iterations:          m.Iterations.Load(),
		SimNanos:            m.SimNanos.Load(),
		StageWallNanos:      m.StageWallNanos.Load(),
		TaskRetries:         m.TaskRetries.Load(),
		RowsReplayed:        m.RowsReplayed.Load(),
		RecoveredIterations: m.RecoveredIterations.Load(),
	}
}

// AddSnapshot folds a snapshot's counts into the metrics atomically —
// how a finished QueryContext folds its per-query counters into the
// cluster's lifetime totals.
func (m *Metrics) AddSnapshot(s Snapshot) {
	m.StagesRun.Add(s.StagesRun)
	m.TasksRun.Add(s.TasksRun)
	m.ShuffleRecords.Add(s.ShuffleRecords)
	m.ShuffleBytes.Add(s.ShuffleBytes)
	m.RemoteFetchBytes.Add(s.RemoteFetchBytes)
	m.LocalFetchRows.Add(s.LocalFetchRows)
	m.BroadcastBytes.Add(s.BroadcastBytes)
	m.Iterations.Add(s.Iterations)
	m.SimNanos.Add(s.SimNanos)
	m.StageWallNanos.Add(s.StageWallNanos)
	m.TaskRetries.Add(s.TaskRetries)
	m.RowsReplayed.Add(s.RowsReplayed)
	m.RecoveredIterations.Add(s.RecoveredIterations)
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.StagesRun.Store(0)
	m.TasksRun.Store(0)
	m.ShuffleRecords.Store(0)
	m.ShuffleBytes.Store(0)
	m.RemoteFetchBytes.Store(0)
	m.LocalFetchRows.Store(0)
	m.BroadcastBytes.Store(0)
	m.Iterations.Store(0)
	m.SimNanos.Store(0)
	m.StageWallNanos.Store(0)
	m.TaskRetries.Store(0)
	m.RowsReplayed.Store(0)
	m.RecoveredIterations.Store(0)
}

// Add returns the counter-wise sum s + o (accumulating totals across runs).
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		StagesRun:           s.StagesRun + o.StagesRun,
		TasksRun:            s.TasksRun + o.TasksRun,
		ShuffleRecords:      s.ShuffleRecords + o.ShuffleRecords,
		ShuffleBytes:        s.ShuffleBytes + o.ShuffleBytes,
		RemoteFetchBytes:    s.RemoteFetchBytes + o.RemoteFetchBytes,
		LocalFetchRows:      s.LocalFetchRows + o.LocalFetchRows,
		BroadcastBytes:      s.BroadcastBytes + o.BroadcastBytes,
		Iterations:          s.Iterations + o.Iterations,
		SimNanos:            s.SimNanos + o.SimNanos,
		StageWallNanos:      s.StageWallNanos + o.StageWallNanos,
		TaskRetries:         s.TaskRetries + o.TaskRetries,
		RowsReplayed:        s.RowsReplayed + o.RowsReplayed,
		RecoveredIterations: s.RecoveredIterations + o.RecoveredIterations,
	}
}

// Sub returns the delta s - o, counter-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		StagesRun:           s.StagesRun - o.StagesRun,
		TasksRun:            s.TasksRun - o.TasksRun,
		ShuffleRecords:      s.ShuffleRecords - o.ShuffleRecords,
		ShuffleBytes:        s.ShuffleBytes - o.ShuffleBytes,
		RemoteFetchBytes:    s.RemoteFetchBytes - o.RemoteFetchBytes,
		LocalFetchRows:      s.LocalFetchRows - o.LocalFetchRows,
		BroadcastBytes:      s.BroadcastBytes - o.BroadcastBytes,
		Iterations:          s.Iterations - o.Iterations,
		SimNanos:            s.SimNanos - o.SimNanos,
		StageWallNanos:      s.StageWallNanos - o.StageWallNanos,
		TaskRetries:         s.TaskRetries - o.TaskRetries,
		RowsReplayed:        s.RowsReplayed - o.RowsReplayed,
		RecoveredIterations: s.RecoveredIterations - o.RecoveredIterations,
	}
}

// String renders the snapshot as one line, covering every counter.
func (s Snapshot) String() string {
	return fmt.Sprintf("stages=%d tasks=%d iters=%d shuffleRecs=%d shuffleBytes=%d remoteBytes=%d localRows=%d bcastBytes=%d simNanos=%d stageWallNanos=%d taskRetries=%d rowsReplayed=%d recoveredIters=%d",
		s.StagesRun, s.TasksRun, s.Iterations, s.ShuffleRecords, s.ShuffleBytes,
		s.RemoteFetchBytes, s.LocalFetchRows, s.BroadcastBytes, s.SimNanos, s.StageWallNanos,
		s.TaskRetries, s.RowsReplayed, s.RecoveredIterations)
}
