package cluster

import (
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

// The data-plane micro-benchmarks. Run with
//
//	go test -bench=. -benchmem ./internal/cluster/
//
// The interesting column is allocs/op: steady-state SetRDD dedup and AggRDD
// merge should sit at (near) zero — every probe encodes into the key index's
// reused scratch buffer instead of building a string key.

func benchSchema() types.Schema {
	return types.NewSchema(
		types.Col("A", types.KindInt),
		types.Col("B", types.KindInt),
		types.Col("W", types.KindFloat),
		types.Col("L", types.KindString), // string column defeats packed-key fast paths
	)
}

func benchClusterRows(n int) []types.Row {
	labels := []string{"red", "green", "blue"}
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.Int(int64(i)),
			types.Int(int64(i % 37)),
			types.Float(float64(i) * 0.25),
			types.Str(labels[i%len(labels)]),
		}
	}
	return rows
}

func BenchmarkSetRDDInsert(b *testing.B) {
	c := newTestCluster(1, 1)
	rows := benchClusterRows(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := c.NewSetRDDN(benchSchema(), 1)
		if got := s.Merge(0, rows); len(got) != len(rows) {
			b.Fatalf("fresh merge kept %d of %d rows", len(got), len(rows))
		}
	}
}

//rasql:allocpin cluster.keyIndex.encRowKey cluster.keyIndex.get cluster.keyIndex.getOrInsert
func BenchmarkSetRDDDedup(b *testing.B) {
	c := newTestCluster(1, 1)
	rows := benchClusterRows(4096)
	s := c.NewSetRDDN(benchSchema(), 1)
	s.Merge(0, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Merge(0, rows); len(got) != 0 {
			b.Fatalf("dedup let %d duplicates through", len(got))
		}
	}
}

//rasql:allocpin cluster.keyIndex.encKey
func BenchmarkAggRDDMerge(b *testing.B) {
	c := newTestCluster(1, 1)
	// Contributions: many rows folding into few groups keyed on (B, L).
	rows := benchClusterRows(4096)
	a := c.NewAggRDDN(benchSchema(), []int{1, 3}, 2, types.AggMin, 1)
	a.Merge(0, benchClusterRows(4096)) // pre-seed so iterations hit existing groups
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(0, rows) // same candidates: no improvement, pure probe cost
	}
}

//rasql:allocpin cluster.Shuffle.Add cluster.getEncBuf cluster.putEncBuf
func BenchmarkShuffleRoundTrip(b *testing.B) {
	c := newTestQuery(4, 4)
	rows := benchClusterRows(4096)
	targets := 4
	out := make([][]types.Row, targets)
	for i, r := range rows {
		t := i % targets
		out[t] = append(out[t], r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := c.NewShuffle(targets)
		for w := 0; w < 4; w++ {
			//rasql:allow workeraffinity -- single-goroutine benchmark writes every shard sequentially; no concurrent producers
			sh.Add(out, w)
		}
		n := 0
		for t := 0; t < targets; t++ {
			n += len(sh.FetchTarget(t, t%4))
		}
		if n != 4*len(rows) {
			b.Fatalf("round trip moved %d rows, want %d", n, 4*len(rows))
		}
	}
}

// BenchmarkDisabledInjector pins the cost of the chaos hooks when chaos is
// off: the whole stage path (placement, dispatch, fetch-point and post-merge
// nil checks) must stay at 0 allocs/op, so a production run pays nothing for
// the fault-injection machinery being compiled in.
//
//rasql:allocpin cluster.QueryContext.runQueue cluster.QueryContext.place cluster.startStopwatch cluster.stopwatch.elapsedNanos
func BenchmarkDisabledInjector(b *testing.B) {
	c := New(Config{Workers: 4, Partitions: 4, StageOverheadOps: -1, SequentialStages: true}).NewQuery(nil)
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Part: i, Preferred: i, Run: func(w int) { c.ChaosPostMerge(w) }}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunStage("noop", tasks)
	}
}

func BenchmarkRowTableProbe(b *testing.B) {
	rows := benchClusterRows(4096)
	t := BuildRowTable(rows, []int{1, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := 0
		for _, r := range rows {
			hits += len(t.ProbeRow(r, []int{1, 3}))
		}
		if hits == 0 {
			b.Fatal("no probe hits")
		}
	}
}
