package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func sampleSnapshot(seed int64) Snapshot {
	s := Snapshot{}
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(seed + int64(i)*7)
	}
	return s
}

func TestSnapshotAddSubRoundtrip(t *testing.T) {
	a := sampleSnapshot(100)
	b := sampleSnapshot(3)
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("a.Add(b).Sub(b) = %+v, want %+v", got, a)
	}
	if got := a.Sub(b).Add(b); got != a {
		t.Errorf("a.Sub(b).Add(b) = %+v, want %+v", got, a)
	}
	if got := a.Sub(a); got != (Snapshot{}) {
		t.Errorf("a.Sub(a) = %+v, want zero", got)
	}
	if got := a.Add(Snapshot{}); got != a {
		t.Errorf("a + 0 = %+v, want %+v", got, a)
	}
	// Field-by-field: Add/Sub must actually touch every counter, so a
	// future counter can't be silently dropped from the fold again. The
	// per-field deltas of sampleSnapshot are distinct, making a skipped
	// field detectable.
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	sum := reflect.ValueOf(a.Add(b))
	diff := reflect.ValueOf(a.Sub(b))
	for i := 0; i < av.NumField(); i++ {
		name := av.Type().Field(i).Name
		if got, want := sum.Field(i).Int(), av.Field(i).Int()+bv.Field(i).Int(); got != want {
			t.Errorf("Add dropped %s: got %d, want %d", name, got, want)
		}
		if got, want := diff.Field(i).Int(), av.Field(i).Int()-bv.Field(i).Int(); got != want {
			t.Errorf("Sub dropped %s: got %d, want %d", name, got, want)
		}
	}
}

// TestMetricsSnapshotFieldParity pins the Metrics/Snapshot field mirror the
// reflection plumbing depends on: same names, same order, atomic.Int64
// against int64. (The package would already panic at init on divergence;
// this surfaces it as a readable test failure.)
func TestMetricsSnapshotFieldParity(t *testing.T) {
	mt := reflect.TypeOf(Metrics{})
	st := reflect.TypeOf(Snapshot{})
	if mt.NumField() != st.NumField() {
		t.Fatalf("Metrics has %d fields, Snapshot %d", mt.NumField(), st.NumField())
	}
	for i := 0; i < mt.NumField(); i++ {
		if mt.Field(i).Name != st.Field(i).Name {
			t.Errorf("field %d: Metrics.%s vs Snapshot.%s", i, mt.Field(i).Name, st.Field(i).Name)
		}
	}
	// AddSnapshot/Snapshot roundtrip across every field.
	var m Metrics
	s := sampleSnapshot(41)
	m.AddSnapshot(s)
	if got := m.Snapshot(); got != s {
		t.Errorf("AddSnapshot/Snapshot roundtrip: got %+v, want %+v", got, s)
	}
}

// TestSnapshotStringCoversAllCounters walks the struct by reflection so a
// future counter can't silently go missing from the rendering again.
func TestSnapshotStringCoversAllCounters(t *testing.T) {
	s := Snapshot{}
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		// Distinct prime-ish values so each field is identifiable.
		v.Field(i).SetInt(int64(1000003 + i*17))
	}
	out := s.String()
	for i := 0; i < v.NumField(); i++ {
		want := fmt.Sprintf("%d", v.Field(i).Int())
		if !strings.Contains(out, want) {
			t.Errorf("String() omits %s (value %s): %q", v.Type().Field(i).Name, want, out)
		}
	}
}

// TestMetricsConcurrentUpdates exercises every counter from many goroutines;
// under -race this pins the atomicity of the Metrics struct, and the final
// snapshot checks no increments were lost.
func TestMetricsConcurrentUpdates(t *testing.T) {
	var m Metrics
	const goroutines, rounds = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.StagesRun.Add(1)
				m.TasksRun.Add(2)
				m.ShuffleRecords.Add(3)
				m.ShuffleBytes.Add(4)
				m.RemoteFetchBytes.Add(5)
				m.LocalFetchRows.Add(6)
				m.BroadcastBytes.Add(7)
				m.Iterations.Add(8)
				m.SimNanos.Add(9)
				m.StageWallNanos.Add(10)
				m.TaskRetries.Add(11)
				m.RowsReplayed.Add(12)
				m.RecoveredIterations.Add(13)
				m.StaleReads.Add(14)
				m.SupersededRows.Add(15)
				m.BarrierWaitNanos.Add(16)
				_ = m.Snapshot() // concurrent reads race-check the loads
			}
		}()
	}
	wg.Wait()
	got := m.Snapshot()
	n := int64(goroutines * rounds)
	want := Snapshot{
		StagesRun: n, TasksRun: 2 * n, ShuffleRecords: 3 * n, ShuffleBytes: 4 * n,
		RemoteFetchBytes: 5 * n, LocalFetchRows: 6 * n, BroadcastBytes: 7 * n,
		Iterations: 8 * n, SimNanos: 9 * n, StageWallNanos: 10 * n,
		TaskRetries: 11 * n, RowsReplayed: 12 * n, RecoveredIterations: 13 * n,
		StaleReads: 14 * n, SupersededRows: 15 * n, BarrierWaitNanos: 16 * n,
	}
	if got != want {
		t.Errorf("lost updates: got %+v, want %+v", got, want)
	}
	m.Reset()
	if got := m.Snapshot(); got != (Snapshot{}) {
		t.Errorf("Reset left %+v", got)
	}
}
