package cluster

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

func intRows(pairs ...[2]int64) []types.Row {
	rows := make([]types.Row, len(pairs))
	for i, p := range pairs {
		rows[i] = types.Row{types.Int(p[0]), types.Int(p[1])}
	}
	return rows
}

func pairSchema() types.Schema {
	return types.NewSchema(types.Col("A", types.KindInt), types.Col("B", types.KindInt))
}

func newTestCluster(workers, parts int) *Cluster {
	return New(Config{Workers: workers, Partitions: parts, StageOverheadOps: -1})
}

func newTestQuery(workers, parts int) *QueryContext {
	return newTestCluster(workers, parts).NewQuery(nil)
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	if c.Workers() <= 0 || c.Partitions() != c.Workers() {
		t.Errorf("defaults: workers=%d partitions=%d", c.Workers(), c.Partitions())
	}
	if c.Config().StageOverheadOps != 20000 {
		t.Errorf("default overhead = %d", c.Config().StageOverheadOps)
	}
}

func TestRunStageExecutesEveryTask(t *testing.T) {
	q := newTestQuery(4, 8)
	var ran atomic.Int64
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Part: i, Preferred: -1, Run: func(w int) { ran.Add(1) }}
	}
	q.RunStage("t", tasks)
	if ran.Load() != 8 {
		t.Errorf("ran %d tasks, want 8", ran.Load())
	}
	snap := q.Metrics.Snapshot()
	if snap.StagesRun != 1 || snap.TasksRun != 8 {
		t.Errorf("metrics: %v", snap)
	}
	// Finish folds the per-query counters into the cluster totals, once.
	q.Finish()
	q.Finish()
	if total := q.Cluster().Metrics.Snapshot(); total.StagesRun != 1 || total.TasksRun != 8 {
		t.Errorf("folded totals: %v", total)
	}
}

func TestPartitionAwarePlacement(t *testing.T) {
	c := newTestQuery(4, 4)
	got := make([]int, 4)
	tasks := make([]Task, 4)
	for i := range tasks {
		part := i
		pref := (i + 1) % 4
		tasks[i] = Task{Part: part, Preferred: pref, Run: func(w int) { got[part] = w }}
	}
	c.RunStage("t", tasks)
	for i := range got {
		if got[i] != (i+1)%4 {
			t.Errorf("task %d ran on %d, want preferred %d", i, got[i], (i+1)%4)
		}
	}
}

func TestHybridPlacementRotates(t *testing.T) {
	c := New(Config{Workers: 4, Partitions: 4, Policy: PolicyHybrid, StageOverheadOps: -1}).NewQuery(nil)
	first := make([]int, 4)
	second := make([]int, 4)
	run := func(dst []int) {
		tasks := make([]Task, 4)
		for i := range tasks {
			part := i
			tasks[i] = Task{Part: part, Preferred: part, Run: func(w int) { dst[part] = w }}
		}
		c.RunStage("t", tasks)
	}
	run(first)
	run(second)
	same := 0
	for i := range first {
		if first[i] == second[i] {
			same++
		}
	}
	if same == 4 {
		t.Error("hybrid policy should not keep every task on the same worker across stages")
	}
}

func TestPartitionRouting(t *testing.T) {
	c := newTestCluster(2, 4)
	rel := relation.FromRows("r", pairSchema(), intRows([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 4}, [2]int64{5, 6}))
	p := c.Partition(rel, []int{0})
	if p.NumPartitions() != 4 || p.Len() != 4 {
		t.Fatalf("partitions=%d len=%d", p.NumPartitions(), p.Len())
	}
	// Rows with the same key must land in the same partition.
	var partOf1 = -1
	for i, part := range p.Parts {
		for _, r := range part {
			if r[0].AsInt() == 1 {
				if partOf1 == -1 {
					partOf1 = i
				} else if partOf1 != i {
					t.Error("rows with key 1 split across partitions")
				}
			}
		}
	}
	// PartitionFor must agree with actual placement.
	for i, part := range p.Parts {
		for _, r := range part {
			if p.PartitionFor(r) != i {
				t.Errorf("PartitionFor(%v) = %d, actual %d", r, p.PartitionFor(r), i)
			}
		}
	}
}

func TestRoundRobinPartition(t *testing.T) {
	c := newTestCluster(2, 3)
	rel := relation.FromRows("r", pairSchema(), intRows([2]int64{1, 1}, [2]int64{2, 2}, [2]int64{3, 3}))
	p := c.Partition(rel, nil)
	for i := range p.Parts {
		if len(p.Parts[i]) != 1 {
			t.Errorf("round robin partition %d has %d rows", i, len(p.Parts[i]))
		}
	}
}

func TestCollectPaysTransfer(t *testing.T) {
	c := newTestQuery(2, 2)
	rel := relation.FromRows("r", pairSchema(), intRows([2]int64{1, 2}, [2]int64{3, 4}))
	p := c.Partition(rel, []int{0})
	before := c.Metrics.Snapshot()
	got := c.Collect(p, "out")
	after := c.Metrics.Snapshot()
	if !got.EqualAsBag(rel) {
		t.Errorf("collect mismatch: %v vs %v", got, rel)
	}
	if after.RemoteFetchBytes <= before.RemoteFetchBytes {
		t.Error("collect should count remote fetch bytes")
	}
}

func TestFetchLocalIsFree(t *testing.T) {
	c := newTestQuery(2, 2)
	rows := intRows([2]int64{1, 2})
	before := c.Metrics.Snapshot()
	got := c.Fetch(rows, 1, 1)
	if &got[0][0] != &rows[0][0] {
		t.Error("local fetch should return the same backing storage")
	}
	if c.Metrics.Snapshot().RemoteFetchBytes != before.RemoteFetchBytes {
		t.Error("local fetch must not count remote bytes")
	}
	got = c.Fetch(rows, 0, 1)
	if len(got) != 1 || !got[0].Equal(rows[0]) {
		t.Error("remote fetch should round-trip the rows")
	}
	if c.Metrics.Snapshot().RemoteFetchBytes == 0 {
		t.Error("remote fetch must count bytes")
	}
}

func TestExchangeRepartitions(t *testing.T) {
	c := newTestQuery(3, 3)
	rel := relation.New("r", pairSchema())
	for i := int64(0); i < 100; i++ {
		rel.Append(types.Row{types.Int(i), types.Int(i % 7)})
	}
	in := c.Partition(rel, []int{0})
	out := c.Exchange("x", in, []int{1})
	if out.Len() != 100 {
		t.Fatalf("exchange lost rows: %d", out.Len())
	}
	// All rows with equal B must now share a partition.
	seen := map[int64]int{}
	for i, part := range out.Parts {
		for _, r := range part {
			b := r[1].AsInt()
			if p, ok := seen[b]; ok && p != i {
				t.Errorf("key %d split across partitions %d and %d", b, p, i)
			}
			seen[b] = i
		}
	}
	if got := c.Collect(out, "c"); !got.EqualAsBag(rel) {
		t.Error("exchange changed the bag of rows")
	}
}

func TestMetricsSnapshotSubAndReset(t *testing.T) {
	c := newTestCluster(2, 2)
	c.Metrics.ShuffleBytes.Add(10)
	a := c.Metrics.Snapshot()
	c.Metrics.ShuffleBytes.Add(5)
	d := c.Metrics.Snapshot().Sub(a)
	if d.ShuffleBytes != 5 {
		t.Errorf("Sub: %d", d.ShuffleBytes)
	}
	c.Metrics.Reset()
	if c.Metrics.Snapshot().ShuffleBytes != 0 {
		t.Error("Reset should zero counters")
	}
	if s := a.String(); s == "" {
		t.Error("Snapshot.String should render")
	}
}

func TestParallelStagesExecuteAllTasks(t *testing.T) {
	c := newTestQuery(4, 8) // default mode: parallel
	var ran atomic.Int64
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i] = Task{Part: i, Preferred: -1, Run: func(w int) { ran.Add(1) }}
	}
	c.RunStage("p", tasks)
	if ran.Load() != 16 {
		t.Errorf("ran %d tasks, want 16", ran.Load())
	}
	if c.Metrics.Snapshot().SimNanos == 0 {
		t.Error("parallel mode should record max per-worker busy time as sim time")
	}
}

// Two queries sharing one cluster run concurrently without interfering:
// stage sequencing and counters are per-query, and Finish folds both into
// the shared totals.
func TestConcurrentQueriesShareCluster(t *testing.T) {
	c := newTestCluster(4, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := c.NewQuery(nil)
			defer q.Finish()
			var ran atomic.Int64
			tasks := make([]Task, 4)
			for j := range tasks {
				tasks[j] = Task{Part: j, Preferred: -1, Run: func(w int) { ran.Add(1) }}
			}
			q.RunStage("t", tasks)
			if ran.Load() != 4 {
				t.Errorf("ran %d tasks, want 4", ran.Load())
			}
			if s := q.Metrics.Snapshot(); s.StagesRun != 1 || s.TasksRun != 4 {
				t.Errorf("per-query metrics polluted by sibling query: %v", s)
			}
		}()
	}
	wg.Wait()
	if s := c.Metrics.Snapshot(); s.StagesRun != 8 || s.TasksRun != 32 {
		t.Errorf("folded totals: %v", s)
	}
}

func TestParallelExchangeMatchesSequential(t *testing.T) {
	rel := relation.New("r", pairSchema())
	for i := int64(0); i < 500; i++ {
		rel.Append(types.Row{types.Int(i), types.Int(i % 13)})
	}
	seq := New(Config{Workers: 4, Partitions: 8, StageOverheadOps: -1, SequentialStages: true}).NewQuery(nil)
	par := newTestQuery(4, 8)
	a := seq.Collect(seq.Exchange("x", seq.Partition(rel, []int{0}), []int{1}), "a")
	b := par.Collect(par.Exchange("x", par.Partition(rel, []int{0}), []int{1}), "b")
	if !a.EqualAsBag(b) {
		t.Error("parallel exchange changed the bag of rows")
	}
}
