package cluster

import (
	"sync"

	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// Barrier-relaxed execution: instead of iterating lockstep stages, each
// partition carries its own iteration clock and consumes delta batches from
// a per-partition inbox as they arrive. The staleness gate bounds how far a
// partition's clock may run ahead of the slowest partition that still has
// work (SSP(k)); with the gate off the region is fully asynchronous.
// Termination is a two-phase quiescence check rather than the BSP
// empty-delta-at-barrier test: a credit counter tracks every undelivered or
// in-flight batch (phase one: the count reaches zero only when no batch is
// pending anywhere and no worker is mid-processing, because outputs are
// credited before their inputs are debited), and every worker observes the
// zero under the router lock before exiting (phase two: all workers idle
// confirm it, and since nothing can recreate credit from zero, the decision
// is stable).
//
// The cost model mirrors RunStage where the same cost exists and drops only
// the barrier: batches crossing workers pay the full serialize/deserialize
// round trip (counted as shuffle + remote-fetch traffic, encoded at emit
// like the map-side shuffle write), same-worker batches are handed over in
// memory (the local handover a no-shuffle decomposed plan enjoys under
// BSP), and every processing step pays the per-task scheduling overhead.
// Simulated time contributed by the region is max over workers of that
// worker's total busy time — the sum-of-maxima the per-iteration barrier
// charges collapses to a single max-of-sums.

// RelaxedOptions parameterizes one barrier-relaxed fixpoint region.
type RelaxedOptions struct {
	// Name labels the region for tracing and chaos scoping (stage name).
	Name string
	// Parts is the number of partitions routed between.
	Parts int
	// Owner maps a partition to the worker that owns its state; all
	// processing for the partition runs on that worker's goroutine.
	Owner func(part int) int
	// Staleness is the SSP bound k: a partition may run at most k rounds
	// ahead of the slowest partition that still has pending or in-flight
	// work. Negative means fully asynchronous (no gate).
	Staleness int
	// Process consumes one drained batch of rows for a partition at the
	// given round and returns output rows bucketed by destination
	// partition (nil when the fixpoint contributes nothing further).
	// stale is the number of consumed rows older than the BSP-fresh stamp
	// (already counted in Metrics.StaleReads; passed so callers can slice
	// the telemetry per round). It runs on the owner worker's goroutine,
	// never concurrently for the same partition.
	Process func(part, worker int, rows []types.Row, round int64, stale int) [][]types.Row
	// Checkpoint, when set under chaos, snapshots a partition before an
	// attempt and returns the rollback that undoes a failed attempt's
	// state mutations. Ignored when the injector is off.
	Checkpoint func(part int) func()
}

// RelaxedStats summarizes one relaxed region.
type RelaxedStats struct {
	// MaxClock is the deepest partition clock reached (rounds processed;
	// round 0 is the seed merge).
	MaxClock int64
	// MaxClockLead is the largest observed clock lead over the slowest
	// active partition at scheduling time — bounded by Staleness in SSP
	// mode (gate invariant), unbounded under async.
	MaxClockLead int64
	// Batches counts processing steps (drained inboxes), the relaxed
	// analog of tasks run.
	Batches int64
}

// relaxedBatch is one routed delta batch. Cross-worker batches carry the
// pooled wire encoding (paid for at emit); same-worker batches carry the
// rows directly.
type relaxedBatch struct {
	buf  *[]byte
	rows []types.Row
	n    int
	// stamp is the producing partition's round (-1 for the driver seed);
	// consumption at round > stamp+1 is a stale read.
	stamp int64
}

// relaxedRouter is the shared state of one relaxed region. All routing
// state sits behind one mutex with a condition variable: workers block on
// it when the gate (or an empty inbox) leaves them nothing to run.
type relaxedRouter struct {
	q   *QueryContext
	opt RelaxedOptions
	sc  *stageChaos // nil when chaos is off

	mu   sync.Mutex
	cond *sync.Cond
	//rasql:guardedby=mu
	inbox [][]relaxedBatch
	//rasql:guardedby=mu
	clock []int64
	//rasql:guardedby=mu
	inflight []bool
	//rasql:guardedby=mu
	outstanding int64
	//rasql:guardedby=mu
	maxLead int64
	//rasql:guardedby=mu
	batches int64
}

// RunRelaxed executes one barrier-relaxed fixpoint region: the seed batches
// are routed to their partitions, and workers drain inboxes — gated by the
// staleness bound — until global quiescence. It contributes one stage's
// worth of metrics: max-of-sums simulated time, per-processing task counts,
// and the region's wall time.
func (q *QueryContext) RunRelaxed(opt RelaxedOptions, seed [][]types.Row) RelaxedStats {
	q.Metrics.StagesRun.Add(1)
	seq := q.stageSeq
	q.stageSeq++

	rt := &relaxedRouter{
		q:        q,
		opt:      opt,
		inbox:    make([][]relaxedBatch, opt.Parts),
		clock:    make([]int64, opt.Parts),
		inflight: make([]bool, opt.Parts),
	}
	rt.cond = sync.NewCond(&rt.mu)
	if q.chaos != nil {
		rt.sc = q.chaos.beginStage(opt.Name, seq)
	}

	spans := q.Tracer.SpansEnabled()
	var stageSpan trace.Span
	if spans {
		stageSpan = q.Tracer.BeginArgs("stage "+opt.Name, trace.TidDriver,
			trace.Arg{Key: "parts", Val: int64(opt.Parts)},
			trace.Arg{Key: "staleness", Val: int64(opt.Staleness)})
	}

	// Seed: the driver emits the base-case batches. Like the BSP seed
	// stage's driver fetch, they pay the wire round trip (encoded here,
	// decoded at drain) but are not shuffle traffic.
	rt.mu.Lock()
	for p, rows := range seed {
		if len(rows) == 0 {
			continue
		}
		rt.enqueueLocked(p, rows, -1, -1)
	}
	rt.mu.Unlock()

	start := startStopwatch()
	busy := make([]int64, q.cfg.Workers)
	if q.cfg.SequentialStages {
		rt.runSequential(busy)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < q.cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rt.runWorker(w, &busy[w], spans)
			}(w)
		}
		wg.Wait()
	}
	q.Metrics.StageWallNanos.Add(start.elapsedNanos())
	var slowest int64
	for _, b := range busy {
		if b > slowest {
			slowest = b
		}
	}
	q.Metrics.SimNanos.Add(slowest)
	stageSpan.End()

	rt.mu.Lock()
	stats := RelaxedStats{MaxClockLead: rt.maxLead, Batches: rt.batches}
	for _, c := range rt.clock {
		if c > stats.MaxClock {
			stats.MaxClock = c
		}
	}
	rt.mu.Unlock()
	q.Metrics.TasksRun.Add(stats.Batches)
	return stats
}

// enqueueLocked routes one output bucket to partition t. producerWorker -1
// is the driver (seed); a bucket crossing workers is encoded immediately —
// the map-side shuffle write, where the bytes are counted — while a bucket
// staying on its producer's worker is handed over in memory.
//
//rasql:locked=mu
//rasql:noalloc
func (rt *relaxedRouter) enqueueLocked(t int, rows []types.Row, stamp int64, producerWorker int) {
	b := relaxedBatch{n: len(rows), stamp: stamp}
	//rasql:allow noalloc -- Owner is a caller-supplied pure index→worker mapping; the engine passes closure-free routing functions
	if producerWorker >= 0 && rt.opt.Owner(t) == producerWorker {
		b.rows = rows
	} else {
		//rasql:allow pooldiscipline -- ownership transfers to relaxedBatch; drainRows recycles the buffer after decoding
		bp := getEncBuf()
		*bp = types.AppendRows((*bp)[:0], rows)
		if producerWorker >= 0 {
			rt.q.Metrics.ShuffleRecords.Add(int64(len(rows)))
			rt.q.Metrics.ShuffleBytes.Add(int64(len(*bp)))
		}
		b.buf = bp
	}
	rt.inbox[t] = append(rt.inbox[t], b)
	rt.outstanding++
	rt.cond.Broadcast()
}

// pickLocked chooses the next runnable partition for worker w: the
// lowest-clock owned partition with pending batches that passes the
// staleness gate. gated reports that some owned partition had work but was
// held back only by the gate — the relaxed analog of barrier wait.
//
//rasql:locked=mu
//rasql:noalloc
func (rt *relaxedRouter) pickLocked(w int) (part int, ok, gated bool) {
	// The gate compares against the slowest partition that still has work
	// (pending or in-flight): finished partitions keep frozen clocks and
	// must not hold the bound, or the region would deadlock. The minimum-
	// clock active partition always passes its own gate, so some worker can
	// always make progress.
	minActive := int64(-1)
	for p := range rt.inbox {
		if len(rt.inbox[p]) > 0 || rt.inflight[p] {
			if minActive < 0 || rt.clock[p] < minActive {
				minActive = rt.clock[p]
			}
		}
	}
	part = -1
	for p := range rt.inbox {
		//rasql:allow noalloc -- Owner is a caller-supplied pure index→worker mapping; the engine passes closure-free routing functions
		if len(rt.inbox[p]) == 0 || rt.opt.Owner(p) != w {
			continue
		}
		if rt.opt.Staleness >= 0 && rt.clock[p]-minActive > int64(rt.opt.Staleness) {
			gated = true
			continue
		}
		if part < 0 || rt.clock[p] < rt.clock[part] {
			part = p
		}
	}
	if part < 0 {
		return -1, false, gated
	}
	if lead := rt.clock[part] - minActive; lead > rt.maxLead {
		rt.maxLead = lead
	}
	return part, true, false
}

// runWorker drains the partitions owned by worker w until quiescence.
// busyNanos accumulates this worker's processing time (the region's
// simulated-time contribution is the max across workers); stalls waiting on
// the staleness gate are counted as barrier wait.
func (rt *relaxedRouter) runWorker(w int, busyNanos *int64, spans bool) {
	var gateStall int64
	for {
		batches, part, round, stale, done := rt.claim(w, &gateStall)
		if done {
			rt.q.Metrics.BarrierWaitNanos.Add(gateStall)
			return
		}
		sw := startStopwatch()
		rows := rt.drainRows(batches, w)
		out := rt.process(w, part, rows, round, stale, spans)
		// Encode cross-worker buckets outside the lock; deliver only
		// appends and signals.
		*busyNanos += sw.elapsedNanos()
		rt.deliver(part, out, round, int64(len(batches)), w)
	}
}

// claim blocks until worker w has a runnable partition (returning its
// drained batches) or the region is quiescent (done). Time stalled only by
// the staleness gate accumulates into gateStall.
func (rt *relaxedRouter) claim(w int, gateStall *int64) (batches []relaxedBatch, part int, round int64, stale int, done bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for {
		if rt.outstanding == 0 {
			rt.cond.Broadcast()
			return nil, -1, 0, 0, true
		}
		p, ok, gated := rt.pickLocked(w)
		if ok {
			batches, round, stale = rt.takeLocked(p)
			return batches, p, round, stale, false
		}
		if gated {
			sw := startStopwatch()
			rt.cond.Wait()
			*gateStall += sw.elapsedNanos()
		} else {
			rt.cond.Wait()
		}
	}
}

// deliver publishes one finished processing step: its output buckets are
// credited to their destinations, then the step's input credit is released.
func (rt *relaxedRouter) deliver(part int, out [][]types.Row, round, taken int64, w int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for t, bucket := range out {
		if len(bucket) > 0 {
			rt.enqueueLocked(t, bucket, round, w)
		}
	}
	rt.completeLocked(part, round, taken)
}

// runSequential is the deterministic single-threaded scheduler: it always
// runs the lowest-clock eligible partition (lowest index on ties), driving
// the same router state on the caller's goroutine.
func (rt *relaxedRouter) runSequential(busy []int64) {
	spans := rt.q.Tracer.SpansEnabled()
	for {
		batches, part, round, stale, done := rt.claimSequential()
		if done {
			return
		}
		w := rt.opt.Owner(part)
		sw := startStopwatch()
		rows := rt.drainRows(batches, w)
		out := rt.process(w, part, rows, round, stale, spans)
		busy[w] += sw.elapsedNanos()
		rt.deliver(part, out, round, int64(len(batches)), w)
	}
}

// claimSequential picks the lowest-clock eligible partition across all
// workers (lowest index on ties), or reports quiescence. Unlike claim it
// never waits: with a single driver goroutine, pending work is always
// immediately runnable or the gate invariant is broken.
func (rt *relaxedRouter) claimSequential() (batches []relaxedBatch, part int, round int64, stale int, done bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.outstanding == 0 {
		return nil, -1, 0, 0, true
	}
	part = -1
	for w := 0; w < rt.q.cfg.Workers && part < 0; w++ {
		if p, ok, _ := rt.pickLocked(w); ok {
			part = p
		}
	}
	if part < 0 {
		// Every pending partition is gated — impossible, since the
		// minimum-clock active partition passes its own gate.
		panic("cluster: relaxed scheduler stuck with pending work")
	}
	batches, round, stale = rt.takeLocked(part)
	return batches, part, round, stale, false
}

// takeLocked claims partition part's pending batches for processing at the
// partition's current round. The batches stay counted in outstanding until
// completeLocked — the credit that keeps quiescence detection sound — and
// the partition is marked in-flight so its clock keeps holding the gate.
//
//rasql:locked=mu
//rasql:noalloc
func (rt *relaxedRouter) takeLocked(part int) ([]relaxedBatch, int64, int) {
	batches := rt.inbox[part]
	rt.inbox[part] = nil
	rt.inflight[part] = true
	round := rt.clock[part]
	stale := 0
	for _, b := range batches {
		if round > b.stamp+1 {
			stale += b.n
		}
	}
	if stale > 0 {
		rt.q.Metrics.StaleReads.Add(int64(stale))
	}
	return batches, round, stale
}

// completeLocked publishes a finished processing step: the partition's
// clock advances, its in-flight mark clears, and the consumed batches'
// credit is released — strictly after the step's own outputs were credited
// by enqueueLocked, so outstanding can only reach zero at true quiescence.
//
//rasql:locked=mu
//rasql:noalloc
func (rt *relaxedRouter) completeLocked(part int, round, taken int64) {
	rt.clock[part] = round + 1
	rt.inflight[part] = false
	rt.outstanding -= taken
	rt.batches++
	rt.cond.Broadcast()
}

// drainRows materializes a drained inbox on worker w: encoded batches pay
// the deserialize half of the round trip (plus the configured communication
// penalty) and recycle their buffers; local batches count as local fetches.
func (rt *relaxedRouter) drainRows(batches []relaxedBatch, w int) []types.Row {
	total := 0
	for _, b := range batches {
		total += b.n
	}
	out := make([]types.Row, 0, total)
	for _, b := range batches {
		if b.buf == nil {
			rt.q.Metrics.LocalFetchRows.Add(int64(b.n))
			out = append(out, b.rows...)
			continue
		}
		buf := *b.buf
		rt.q.Metrics.RemoteFetchBytes.Add(int64(len(buf)))
		if p := rt.q.cfg.ShufflePenaltyOpsPerByte; p > 0 {
			burn(p * len(buf))
		}
		var err error
		out, err = types.DecodeRowsAppend(out, buf)
		if err != nil {
			panic("cluster: relaxed wire corruption: " + err.Error())
		}
		putEncBuf(b.buf)
	}
	return out
}

// process runs one drained batch through the region's Process callback,
// paying the per-task scheduling overhead and, under chaos, the bounded
// attempt/rollback loop.
func (rt *relaxedRouter) process(w, part int, rows []types.Row, round int64, stale int, spans bool) [][]types.Row {
	burn(rt.q.cfg.StageOverheadOps)
	if rt.sc == nil {
		if spans {
			s := rt.q.Tracer.BeginArgs(rt.opt.Name, trace.TidWorker(w),
				trace.Arg{Key: "part", Val: int64(part)},
				trace.Arg{Key: "round", Val: round})
			defer s.End()
		}
		return rt.opt.Process(part, w, rows, round, stale)
	}
	// Chaos decisions key on the consuming partition's round, not the
	// region-level stage occurrence: a schedule pinned to Occurrence o hits
	// round o here and pass o of the equivalent BSP loop, so straggler/kill
	// schedules stay meaningful across evaluation modes. The sequence seed
	// is varied per round for the same reason.
	sc := &stageChaos{inj: rt.sc.inj, name: rt.sc.name, seq: rt.sc.seq + int(round)*numStageSeqStride, occ: int(round)}
	var rollback func()
	if rt.opt.Checkpoint != nil {
		rollback = rt.opt.Checkpoint(part)
	}
	for attempt := 0; ; attempt++ {
		out, ok := rt.processAttempt(sc, w, part, rows, round, stale, attempt, spans)
		if ok {
			return out
		}
		rt.q.Metrics.TaskRetries.Add(1)
		if rollback != nil {
			rollback()
			rt.q.Metrics.RecoveredIterations.Add(1)
		}
	}
}

// numStageSeqStride spaces the per-round chaos sequence seeds so rounds of
// one relaxed region draw independent rate decisions.
const numStageSeqStride = 7919

// processAttempt runs one attempt of a relaxed processing step under the
// injector, mirroring runTaskAttempt: fault panics are recovered and report
// failure; real panics propagate.
func (rt *relaxedRouter) processAttempt(sc *stageChaos, w, part int, rows []types.Row, round int64, stale, attempt int, spans bool) (out [][]types.Row, ok bool) {
	q := rt.q
	inj := sc.inj
	inj.ctx[w] = chaosTaskCtx{sc: sc, part: part, attempt: attempt}
	defer func() {
		inj.ctx[w] = chaosTaskCtx{}
		r := recover()
		if r == nil {
			return
		}
		fp, isFault := r.(faultPanic)
		if !isFault {
			panic(r)
		}
		out, ok = nil, false
		if q.Tracer.SpansEnabled() {
			q.Tracer.Instant("fault "+fp.kind.String(), trace.TidWorker(w),
				trace.Arg{Key: "part", Val: int64(part)},
				trace.Arg{Key: "attempt", Val: int64(attempt)})
		}
	}()
	if spans {
		s := q.Tracer.BeginArgs(rt.opt.Name, trace.TidWorker(w),
			trace.Arg{Key: "part", Val: int64(part)},
			trace.Arg{Key: "round", Val: round},
			trace.Arg{Key: "attempt", Val: int64(attempt)})
		defer s.End()
	}
	if attempt > 0 {
		// A replayed attempt re-reads its drained input — wasted work the
		// fault-free schedule would not have paid.
		q.Metrics.RowsReplayed.Add(int64(len(rows)))
	}
	if sc.roll(part, attempt, FaultStraggler) {
		burn(inj.cfg.StragglerOps)
	}
	if sc.roll(part, attempt, FaultWorkerLoss) {
		inj.invalidateWorker(w)
		panic(faultPanic{kind: FaultWorkerLoss})
	}
	if sc.roll(part, attempt, FaultTaskStart) {
		panic(faultPanic{kind: FaultTaskStart})
	}
	if sc.roll(part, attempt, FaultFetch) {
		panic(faultPanic{kind: FaultFetch})
	}
	return rt.opt.Process(part, w, rows, round, stale), true
}
