package cluster

import (
	"encoding/binary"

	"github.com/rasql/rasql-go/internal/types"
)

// Broadcast is a relation replicated to every worker as a per-worker hash
// table keyed on join-key columns — the build side of a broadcast-hash join.
type Broadcast struct {
	Schema types.Schema
	Key    []int
	// tables[w] is worker w's private hash table.
	tables []*RowTable
	// wire is the encoded relation, retained only under chaos so a worker
	// whose cache blocks were invalidated by a simulated worker loss can
	// rebuild its table (re-fetching the broadcast, paid in BroadcastBytes).
	wire       []byte
	compressed bool
	c          *QueryContext
}

// Table returns the hash table visible to the given worker. A worker whose
// cached table was invalidated by a simulated worker loss rebuilds it from
// the retained wire — always on that worker's own goroutine, so the slot is
// data-race free.
func (b *Broadcast) Table(worker int) *RowTable {
	if t := b.tables[worker]; t != nil || b.wire == nil {
		return t
	}
	b.c.Metrics.BroadcastBytes.Add(int64(len(b.wire)))
	b.tables[worker] = buildFromWire(b.wire, b.compressed, b.Key)
	return b.tables[worker]
}

// invalidate drops one worker's cache block; no-op unless the wire was
// retained (chaos on), since without it the table could not be rebuilt.
func (b *Broadcast) invalidate(worker int) {
	if b.wire != nil {
		b.tables[worker] = nil
	}
}

// buildFromWire decodes a broadcast wire payload and builds the probe table.
func buildFromWire(wire []byte, compressed bool, key []int) *RowTable {
	if compressed {
		got, err := types.DecodeRows(wire)
		if err != nil {
			panic("cluster: broadcast wire corruption: " + err.Error())
		}
		return BuildRowTable(got, key)
	}
	// Re-bucket the shipped hashed relation into the worker's probe
	// structure.
	hashed := decodeHashed(wire)
	var rows []types.Row
	for _, bucket := range hashed {
		rows = append(rows, bucket...)
	}
	return BuildRowTable(rows, key)
}

// Broadcast replicates rows to every worker, keyed on key, honouring the
// cluster's CompressBroadcast setting.
//
// With compression (the paper's Section 7.2 optimization) the raw relation
// is serialized once in the compact varint wire format and every worker
// decodes it and builds its own hash table. Without compression the master
// builds the hash table first and ships the *hashed* relation — per-entry
// key strings and bucket headers make it 2-3x larger on the wire, and
// workers still pay the decode.
func (c *QueryContext) Broadcast(rows []types.Row, schema types.Schema, key []int) *Broadcast {
	b := &Broadcast{
		Schema: schema,
		Key:    append([]int(nil), key...),
		tables: make([]*RowTable, c.cfg.Workers),
	}
	var wire []byte
	if c.cfg.CompressBroadcast {
		wire = types.EncodeRows(rows)
	} else {
		wire = encodeHashed(buildTable(rows, key))
	}
	c.Metrics.BroadcastBytes.Add(int64(len(wire)) * int64(c.cfg.Workers))
	if c.chaos != nil {
		// Keep the wire around so a worker-loss fault can invalidate and
		// lazily rebuild per-worker tables, and register for invalidation.
		b.wire, b.compressed, b.c = wire, c.cfg.CompressBroadcast, c
		c.chaos.broadcasts = append(c.chaos.broadcasts, b)
	}

	tasks := make([]Task, c.cfg.Workers)
	for w := range tasks {
		worker := w
		tasks[w] = Task{Part: worker, Preferred: worker, Run: func(onW int) {
			// Idempotent by construction: a replayed attempt just rebuilds
			// the same private table, so no Rollback is needed.
			b.tables[worker] = buildFromWire(wire, c.cfg.CompressBroadcast, key)
		}}
	}
	c.RunStage("broadcast", tasks)
	return b
}

func buildTable(rows []types.Row, key []int) map[string][]types.Row {
	t := make(map[string][]types.Row, len(rows))
	for _, r := range rows {
		k := types.KeyString(r, key)
		t[k] = append(t[k], r)
	}
	return t
}

// encodeHashed serializes a built hash table: per entry a 16-byte bucket
// header, the key string, then the bucket rows. This mirrors how shipping a
// pre-built hashed relation inflates the payload versus the raw rows.
func encodeHashed(t map[string][]types.Row) []byte {
	buf := make([]byte, 0, 64*len(t))
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	var header [16]byte
	for k, rows := range t {
		buf = append(buf, header[:]...) // bucket metadata (hash, pointers)
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = append(buf, types.EncodeRows(rows)...)
	}
	return buf
}

func decodeHashed(buf []byte) map[string][]types.Row {
	n, sz := binary.Uvarint(buf)
	pos := sz
	t := make(map[string][]types.Row, n)
	for i := uint64(0); i < n; i++ {
		pos += 16 // skip bucket header
		l, sz := binary.Uvarint(buf[pos:])
		pos += sz
		k := string(buf[pos : pos+int(l)])
		pos += int(l)
		// DecodeRows reads a batch; we must know its length. Re-decode by
		// scanning: batch header then rows.
		rows, used, err := decodeRowsCounted(buf[pos:])
		if err != nil {
			panic("cluster: hashed broadcast corruption: " + err.Error())
		}
		pos += used
		t[k] = rows
	}
	return t
}

func decodeRowsCounted(buf []byte) ([]types.Row, int, error) {
	n, sz := binary.Uvarint(buf)
	pos := sz
	rows := make([]types.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		r, used, err := types.DecodeRow(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		rows = append(rows, r)
	}
	return rows, pos, nil
}
