package cluster

import (
	"github.com/rasql/rasql-go/internal/types"
)

// SetRDD is the paper's Section 6.1 data structure for the *all* relation of
// a set-semantics recursive view: each partition keeps an append-only hash
// set cached on its owner worker, so the per-iteration union/set-difference
// only pays for genuinely new tuples instead of copying the whole RDD.
//
// When the cluster is configured with ImmutableState the merge instead
// copies the full partition contents every iteration — vanilla immutable
// RDD behaviour, kept for the ablation benchmark.
type SetRDD struct {
	Schema types.Schema
	Owner  []int

	c    *Cluster
	sets []map[string]struct{}
	// packed holds exact fixed-size keys for all-numeric schemas of up to
	// three columns (no per-row string allocation); rows that fail to
	// pack (e.g. NULLs) overflow into sets.
	packed  []map[types.PackedKey]struct{}
	allCols []int
	rows    [][]types.Row
}

// NewSetRDD creates an empty SetRDD with the cluster's default partitions.
func (c *Cluster) NewSetRDD(schema types.Schema) *SetRDD {
	return c.NewSetRDDN(schema, c.cfg.Partitions)
}

// NewSetRDDN is NewSetRDD with an explicit partition count.
func (c *Cluster) NewSetRDDN(schema types.Schema, parts int) *SetRDD {
	s := &SetRDD{
		Schema: schema,
		Owner:  make([]int, parts),
		c:      c,
		sets:   make([]map[string]struct{}, parts),
		rows:   make([][]types.Row, parts),
	}
	if schema.Len() <= 3 && types.AllNumeric(schema) {
		s.packed = make([]map[types.PackedKey]struct{}, parts)
		s.allCols = make([]int, schema.Len())
		for i := range s.allCols {
			s.allCols[i] = i
		}
	}
	for i := range s.Owner {
		s.Owner[i] = c.DefaultOwner(i)
		s.sets[i] = make(map[string]struct{})
		if s.packed != nil {
			s.packed[i] = make(map[types.PackedKey]struct{})
		}
	}
	return s
}

// add inserts the row's key if absent, reporting whether it was new.
func (s *SetRDD) add(part int, r types.Row) bool {
	if s.packed != nil {
		if k, ok := types.PackRow(r, s.allCols); ok {
			if _, dup := s.packed[part][k]; dup {
				return false
			}
			s.packed[part][k] = struct{}{}
			return true
		}
	}
	k := types.RowKeyString(r)
	if _, dup := s.sets[part][k]; dup {
		return false
	}
	s.sets[part][k] = struct{}{}
	return true
}

// has reports membership without inserting.
func (s *SetRDD) has(part int, r types.Row) bool {
	if s.packed != nil {
		if k, ok := types.PackRow(r, s.allCols); ok {
			_, dup := s.packed[part][k]
			return dup
		}
	}
	_, dup := s.sets[part][types.RowKeyString(r)]
	return dup
}

// Merge set-differences incoming against partition part and unions the
// survivors in, returning the genuinely new rows (the next delta). It must
// be called from the task that owns the partition.
func (s *SetRDD) Merge(part int, incoming []types.Row) []types.Row {
	if s.c.cfg.ImmutableState {
		// Simulate an immutable union: rebuild the partition's set and
		// row storage from scratch, copying all previous data.
		newSet := make(map[string]struct{}, len(s.sets[part])+len(incoming))
		for k := range s.sets[part] {
			newSet[k] = struct{}{}
		}
		s.sets[part] = newSet
		if s.packed != nil {
			newPacked := make(map[types.PackedKey]struct{}, len(s.packed[part])+len(incoming))
			for k := range s.packed[part] {
				newPacked[k] = struct{}{}
			}
			s.packed[part] = newPacked
		}
		newRows := make([]types.Row, len(s.rows[part]), len(s.rows[part])+len(incoming))
		copy(newRows, s.rows[part])
		s.rows[part] = newRows
	}

	var delta []types.Row
	for _, r := range incoming {
		if !s.add(part, r) {
			continue
		}
		s.rows[part] = append(s.rows[part], r)
		delta = append(delta, r)
	}
	return delta
}

// Contains reports whether the partition already holds the row.
func (s *SetRDD) Contains(part int, r types.Row) bool {
	return s.has(part, r)
}

// Rows returns the accumulated rows of a partition (no copy; callers must
// not mutate).
func (s *SetRDD) Rows(part int) []types.Row { return s.rows[part] }

// Len returns the total number of distinct rows.
func (s *SetRDD) Len() int {
	n := 0
	for _, r := range s.rows {
		n += len(r)
	}
	return n
}

// NumPartitions returns the partition count.
func (s *SetRDD) NumPartitions() int { return len(s.rows) }

// AggRDD is the *all* relation of a recursive view with an aggregate in its
// head: each partition maps a group key to the row holding the group's
// current aggregate value. Merging incoming contributions yields the delta —
// groups that are new or whose value improved (min/max) or changed
// (sum/count) this iteration, which is exactly the paper's Algorithm 5
// Reduce stage.
type AggRDD struct {
	Schema types.Schema
	// Key holds the group-by column indices (all head columns except the
	// aggregate, per RaSQL's implicit group-by rule).
	Key []int
	// ValIdx is the aggregate value column index.
	ValIdx int
	// Kind is the aggregate.
	Kind  types.AggKind
	Owner []int

	c    *Cluster
	maps []map[string]int // group key -> index into entries[part]
	// pmaps holds exact packed keys when the group columns are numeric
	// and at most three; rows that fail to pack overflow into maps.
	pmaps []map[types.PackedKey]int
	rows  [][]types.Row // entry rows, value column holds the running total/extremum
}

// AggDelta is the delta produced by one AggRDD merge: the updated rows
// (value column = new total / new extremum) plus, for additive aggregates,
// the aligned increments that semi-naive propagation must feed into
// downstream sums instead of the totals.
type AggDelta struct {
	Rows []types.Row
	Incs []types.Value
	// News marks entries whose group first appeared in this merge.
	News []bool
}

// Empty reports whether the delta carries no updates.
func (d AggDelta) Empty() bool { return len(d.Rows) == 0 }

// NewAggRDD creates an empty AggRDD.
func (c *Cluster) NewAggRDD(schema types.Schema, key []int, valIdx int, kind types.AggKind) *AggRDD {
	return c.NewAggRDDN(schema, key, valIdx, kind, c.cfg.Partitions)
}

// NewAggRDDN is NewAggRDD with an explicit partition count.
func (c *Cluster) NewAggRDDN(schema types.Schema, key []int, valIdx int, kind types.AggKind, parts int) *AggRDD {
	a := &AggRDD{
		Schema: schema,
		Key:    append([]int(nil), key...),
		ValIdx: valIdx,
		Kind:   kind,
		Owner:  make([]int, parts),
		c:      c,
		maps:   make([]map[string]int, parts),
		rows:   make([][]types.Row, parts),
	}
	packable := len(key) <= 3
	for _, kc := range key {
		switch schema.Columns[kc].Type {
		case types.KindInt, types.KindFloat, types.KindBool:
		default:
			packable = false
		}
	}
	if packable {
		a.pmaps = make([]map[types.PackedKey]int, parts)
	}
	for i := range a.Owner {
		a.Owner[i] = c.DefaultOwner(i)
		a.maps[i] = make(map[string]int)
		if a.pmaps != nil {
			a.pmaps[i] = make(map[types.PackedKey]int)
		}
	}
	return a
}

// lookup finds the entry index for a row's group key; insert registers a
// new index under the same key.
func (a *AggRDD) lookup(part int, r types.Row) (int, bool) {
	if a.pmaps != nil {
		if k, ok := types.PackRow(r, a.Key); ok {
			idx, hit := a.pmaps[part][k]
			return idx, hit
		}
	}
	idx, hit := a.maps[part][types.KeyString(r, a.Key)]
	return idx, hit
}

func (a *AggRDD) insert(part int, r types.Row, idx int) {
	if a.pmaps != nil {
		if k, ok := types.PackRow(r, a.Key); ok {
			a.pmaps[part][k] = idx
			return
		}
	}
	a.maps[part][types.KeyString(r, a.Key)] = idx
}

// Merge folds incoming contribution rows into partition part. For min/max
// the value column of an incoming row is a candidate value; for sum/count it
// is an increment. Must be called from the task owning the partition.
//
// Ownership: Merge adopts the incoming rows, and the returned delta rows
// alias the stored state (the value column reflects the new total or
// extremum at merge time). Callers must treat delta rows as read-only and
// consume them before the next merge of the same partition — exactly the
// lifecycle of semi-naive deltas.
func (a *AggRDD) Merge(part int, incoming []types.Row) AggDelta {
	if a.c.cfg.ImmutableState {
		a.copyPartition(part)
	}
	var d AggDelta
	additive := a.Kind.Additive()
	for _, r := range incoming {
		v := r[a.ValIdx]
		idx, ok := a.lookup(part, r)
		if !ok {
			if additive && v.AsFloat() == 0 {
				continue // zero increment on a fresh group derives nothing
			}
			a.insert(part, r, len(a.rows[part]))
			a.rows[part] = append(a.rows[part], r)
			d.Rows = append(d.Rows, r)
			d.News = append(d.News, true)
			if additive {
				d.Incs = append(d.Incs, v)
			}
			continue
		}
		cur := a.rows[part][idx][a.ValIdx]
		if additive {
			if v.AsFloat() == 0 {
				continue
			}
			nv := cur.Add(v)
			a.rows[part][idx][a.ValIdx] = nv
			d.Rows = append(d.Rows, a.rows[part][idx])
			d.News = append(d.News, false)
			d.Incs = append(d.Incs, v)
			continue
		}
		if a.Kind.Improves(v, cur) {
			a.rows[part][idx][a.ValIdx] = v
			d.Rows = append(d.Rows, a.rows[part][idx])
			d.News = append(d.News, false)
		}
	}
	return d
}

// copyPartition simulates an immutable-RDD union by duplicating the
// partition's entire map and row storage before mutation.
func (a *AggRDD) copyPartition(part int) {
	nm := make(map[string]int, len(a.maps[part]))
	for k, v := range a.maps[part] {
		nm[k] = v
	}
	if a.pmaps != nil {
		np := make(map[types.PackedKey]int, len(a.pmaps[part]))
		for k, v := range a.pmaps[part] {
			np[k] = v
		}
		a.pmaps[part] = np
	}
	nr := make([]types.Row, len(a.rows[part]))
	for i, r := range a.rows[part] {
		nr[i] = r.Clone()
	}
	a.maps[part] = nm
	a.rows[part] = nr
}

// Rows returns the accumulated group rows of a partition (no copy; callers
// must not mutate).
func (a *AggRDD) Rows(part int) []types.Row { return a.rows[part] }

// Lookup returns the current row whose group key matches the given row's,
// if present.
func (a *AggRDD) Lookup(part int, r types.Row) (types.Row, bool) {
	idx, ok := a.lookup(part, r)
	if !ok {
		return nil, false
	}
	return a.rows[part][idx], true
}

// Len returns the total number of groups across partitions.
func (a *AggRDD) Len() int {
	n := 0
	for _, r := range a.rows {
		n += len(r)
	}
	return n
}

// NumPartitions returns the partition count.
func (a *AggRDD) NumPartitions() int { return len(a.rows) }

// The paper's Section 6.1 argues SetRDD's mutability does not compromise
// fault recovery: the accumulated state acts as a checkpoint, so a failure
// replays only the current iteration's job. Checkpoint/Restore implement
// that mechanism — a cheap per-partition snapshot taken before a merge,
// restored if the task must be replayed. Snapshots share row storage with
// the live state (rows are only appended or have their value column
// replaced), so a checkpoint costs O(partition size) pointer copies, not a
// deep clone.

// SetCheckpoint captures one SetRDD partition's state.
type SetCheckpoint struct {
	part   int
	rowLen int
	set    map[string]struct{}
	packed map[types.PackedKey]struct{}
}

// Checkpoint snapshots a partition before a merge.
func (s *SetRDD) Checkpoint(part int) *SetCheckpoint {
	cp := &SetCheckpoint{part: part, rowLen: len(s.rows[part])}
	cp.set = make(map[string]struct{}, len(s.sets[part]))
	for k := range s.sets[part] {
		cp.set[k] = struct{}{}
	}
	if s.packed != nil {
		cp.packed = make(map[types.PackedKey]struct{}, len(s.packed[part]))
		for k := range s.packed[part] {
			cp.packed[k] = struct{}{}
		}
	}
	return cp
}

// Restore rolls the partition back to the checkpoint, undoing any merges
// applied since.
func (s *SetRDD) Restore(cp *SetCheckpoint) {
	s.rows[cp.part] = s.rows[cp.part][:cp.rowLen]
	s.sets[cp.part] = cp.set
	if s.packed != nil {
		s.packed[cp.part] = cp.packed
	}
}

// AggCheckpoint captures one AggRDD partition's state: the group index
// plus the aggregate values (rows themselves are updated in place, so the
// values must be saved).
type AggCheckpoint struct {
	part   int
	rowLen int
	vals   []types.Value
	m      map[string]int
	pm     map[types.PackedKey]int
}

// Checkpoint snapshots a partition before a merge.
func (a *AggRDD) Checkpoint(part int) *AggCheckpoint {
	cp := &AggCheckpoint{part: part, rowLen: len(a.rows[part])}
	cp.vals = make([]types.Value, cp.rowLen)
	for i, r := range a.rows[part] {
		cp.vals[i] = r[a.ValIdx]
	}
	cp.m = make(map[string]int, len(a.maps[part]))
	for k, v := range a.maps[part] {
		cp.m[k] = v
	}
	if a.pmaps != nil {
		cp.pm = make(map[types.PackedKey]int, len(a.pmaps[part]))
		for k, v := range a.pmaps[part] {
			cp.pm[k] = v
		}
	}
	return cp
}

// Restore rolls the partition back to the checkpoint: groups added since
// are dropped and updated aggregate values are reverted.
func (a *AggRDD) Restore(cp *AggCheckpoint) {
	a.rows[cp.part] = a.rows[cp.part][:cp.rowLen]
	for i, v := range cp.vals {
		a.rows[cp.part][i][a.ValIdx] = v
	}
	a.maps[cp.part] = cp.m
	if a.pmaps != nil {
		a.pmaps[cp.part] = cp.pm
	}
}
