package cluster

import (
	"github.com/rasql/rasql-go/internal/types"
)

// SetRDD is the paper's Section 6.1 data structure for the *all* relation of
// a set-semantics recursive view: each partition keeps an append-only hash
// set cached on its owner worker, so the per-iteration union/set-difference
// only pays for genuinely new tuples instead of copying the whole RDD.
//
// Each partition's set is a keyIndex over binary row keys: dedup probes
// encode into the index's scratch buffer and compare raw bytes, so the
// steady-state hot path (duplicate rows arriving after the first iteration)
// does zero heap allocation. The index's dense ids parallel the partition's
// row slice — entry i is rows[part][i] — which is what makes checkpoints
// O(1) below.
//
// When the cluster is configured with ImmutableState the merge instead
// copies the full partition contents every iteration — vanilla immutable
// RDD behaviour, kept for the ablation benchmark.
type SetRDD struct {
	Schema types.Schema
	Owner  []int

	c    *Cluster
	idx  []*keyIndex
	rows [][]types.Row
}

// NewSetRDD creates an empty SetRDD with the cluster's default partitions.
func (c *Cluster) NewSetRDD(schema types.Schema) *SetRDD {
	return c.NewSetRDDN(schema, c.cfg.Partitions)
}

// NewSetRDDN is NewSetRDD with an explicit partition count.
func (c *Cluster) NewSetRDDN(schema types.Schema, parts int) *SetRDD {
	s := &SetRDD{
		Schema: schema,
		Owner:  make([]int, parts),
		c:      c,
		idx:    make([]*keyIndex, parts),
		rows:   make([][]types.Row, parts),
	}
	for i := range s.Owner {
		s.Owner[i] = c.DefaultOwner(i)
		s.idx[i] = newKeyIndex()
	}
	return s
}

// add inserts the row's key if absent, reporting whether it was new.
func (s *SetRDD) add(part int, r types.Row) bool {
	x := s.idx[part]
	b, h := x.encRowKey(r)
	_, inserted := x.getOrInsert(b, h)
	return inserted
}

// has reports membership without inserting.
func (s *SetRDD) has(part int, r types.Row) bool {
	x := s.idx[part]
	b, h := x.encRowKey(r)
	_, ok := x.get(b, h)
	return ok
}

// Merge set-differences incoming against partition part and unions the
// survivors in, returning the genuinely new rows (the next delta). It must
// be called from the task that owns the partition.
func (s *SetRDD) Merge(part int, incoming []types.Row) []types.Row {
	if s.c.cfg.ImmutableState {
		// Simulate an immutable union: rebuild the partition's index and
		// row storage from scratch, copying all previous data.
		s.idx[part] = s.idx[part].clone()
		newRows := make([]types.Row, len(s.rows[part]), len(s.rows[part])+len(incoming))
		copy(newRows, s.rows[part])
		s.rows[part] = newRows
	}

	var delta []types.Row
	for _, r := range incoming {
		if !s.add(part, r) {
			continue
		}
		s.rows[part] = append(s.rows[part], r)
		delta = append(delta, r)
	}
	return delta
}

// Contains reports whether the partition already holds the row.
func (s *SetRDD) Contains(part int, r types.Row) bool {
	return s.has(part, r)
}

// Rows returns the accumulated rows of a partition (no copy; callers must
// not mutate).
func (s *SetRDD) Rows(part int) []types.Row { return s.rows[part] }

// Len returns the total number of distinct rows.
func (s *SetRDD) Len() int {
	n := 0
	for _, r := range s.rows {
		n += len(r)
	}
	return n
}

// NumPartitions returns the partition count.
func (s *SetRDD) NumPartitions() int { return len(s.rows) }

// AggRDD is the *all* relation of a recursive view with an aggregate in its
// head: each partition maps a group key to the row holding the group's
// current aggregate value. Merging incoming contributions yields the delta —
// groups that are new or whose value improved (min/max) or changed
// (sum/count) this iteration, which is exactly the paper's Algorithm 5
// Reduce stage.
//
// Group lookup rides the same binary-key keyIndex as SetRDD: the index maps
// a group's key bytes to its dense entry id, and entry i is rows[part][i].
type AggRDD struct {
	Schema types.Schema
	// Key holds the group-by column indices (all head columns except the
	// aggregate, per RaSQL's implicit group-by rule).
	Key []int
	// ValIdx is the aggregate value column index.
	ValIdx int
	// Kind is the aggregate.
	Kind  types.AggKind
	Owner []int

	c    *Cluster
	idx  []*keyIndex
	rows [][]types.Row // entry rows, value column holds the running total/extremum
}

// AggDelta is the delta produced by one AggRDD merge: the updated rows
// (value column = new total / new extremum) plus, for additive aggregates,
// the aligned increments that semi-naive propagation must feed into
// downstream sums instead of the totals.
type AggDelta struct {
	Rows []types.Row
	Incs []types.Value
	// News marks entries whose group first appeared in this merge.
	News []bool
}

// Empty reports whether the delta carries no updates.
func (d AggDelta) Empty() bool { return len(d.Rows) == 0 }

// NewAggRDD creates an empty AggRDD.
func (c *Cluster) NewAggRDD(schema types.Schema, key []int, valIdx int, kind types.AggKind) *AggRDD {
	return c.NewAggRDDN(schema, key, valIdx, kind, c.cfg.Partitions)
}

// NewAggRDDN is NewAggRDD with an explicit partition count.
func (c *Cluster) NewAggRDDN(schema types.Schema, key []int, valIdx int, kind types.AggKind, parts int) *AggRDD {
	a := &AggRDD{
		Schema: schema,
		Key:    append([]int(nil), key...),
		ValIdx: valIdx,
		Kind:   kind,
		Owner:  make([]int, parts),
		c:      c,
		idx:    make([]*keyIndex, parts),
		rows:   make([][]types.Row, parts),
	}
	for i := range a.Owner {
		a.Owner[i] = c.DefaultOwner(i)
		a.idx[i] = newKeyIndex()
	}
	return a
}

// lookup finds the entry index for a row's group key.
func (a *AggRDD) lookup(part int, r types.Row) (int, bool) {
	x := a.idx[part]
	b, h := x.encKey(r, a.Key)
	return x.get(b, h)
}

// Merge folds incoming contribution rows into partition part. For min/max
// the value column of an incoming row is a candidate value; for sum/count it
// is an increment. Must be called from the task owning the partition.
//
// Ownership: incoming rows stay caller-owned (a new group stores a clone,
// never the incoming row itself — see below), and the returned delta rows
// alias the stored state (the value column reflects the new total or
// extremum at merge time). Callers must treat delta rows as read-only and
// consume them before the next merge of the same partition — exactly the
// lifecycle of semi-naive deltas.
func (a *AggRDD) Merge(part int, incoming []types.Row) AggDelta {
	if a.c.cfg.ImmutableState {
		a.copyPartition(part)
	}
	var d AggDelta
	additive := a.Kind.Additive()
	x := a.idx[part] // after the ImmutableState clone above
	for _, r := range incoming {
		v := r[a.ValIdx]
		// Encode the group key once; the scratch bytes stay valid through
		// the get, so a miss reuses them for the insert.
		b, h := x.encKey(r, a.Key)
		idx, ok := x.get(b, h)
		if !ok {
			if additive && v.AsFloat() == 0 {
				continue // zero increment on a fresh group derives nothing
			}
			x.getOrInsert(b, h)
			// Store a clone: a second contribution to this group later in
			// the same batch updates the stored row's value column in
			// place, and adopting the caller's row would leak that
			// mutation into the input batch — Checkpoint/Restore only
			// reverts rows that existed at snapshot time, so a replay of
			// the same batch would then double-count the corrupted row.
			nr := r.Clone()
			a.rows[part] = append(a.rows[part], nr)
			d.Rows = append(d.Rows, nr)
			d.News = append(d.News, true)
			if additive {
				d.Incs = append(d.Incs, v)
			}
			continue
		}
		cur := a.rows[part][idx][a.ValIdx]
		if additive {
			if v.AsFloat() == 0 {
				continue
			}
			nv := cur.Add(v)
			a.rows[part][idx][a.ValIdx] = nv
			d.Rows = append(d.Rows, a.rows[part][idx])
			d.News = append(d.News, false)
			d.Incs = append(d.Incs, v)
			continue
		}
		if a.Kind.Improves(v, cur) {
			a.rows[part][idx][a.ValIdx] = v
			d.Rows = append(d.Rows, a.rows[part][idx])
			d.News = append(d.News, false)
		}
	}
	return d
}

// copyPartition simulates an immutable-RDD union by duplicating the
// partition's entire index and row storage before mutation.
func (a *AggRDD) copyPartition(part int) {
	a.idx[part] = a.idx[part].clone()
	nr := make([]types.Row, len(a.rows[part]))
	for i, r := range a.rows[part] {
		nr[i] = r.Clone()
	}
	a.rows[part] = nr
}

// Rows returns the accumulated group rows of a partition (no copy; callers
// must not mutate).
func (a *AggRDD) Rows(part int) []types.Row { return a.rows[part] }

// Lookup returns the current row whose group key matches the given row's,
// if present.
func (a *AggRDD) Lookup(part int, r types.Row) (types.Row, bool) {
	idx, ok := a.lookup(part, r)
	if !ok {
		return nil, false
	}
	return a.rows[part][idx], true
}

// Len returns the total number of groups across partitions.
func (a *AggRDD) Len() int {
	n := 0
	for _, r := range a.rows {
		n += len(r)
	}
	return n
}

// NumPartitions returns the partition count.
func (a *AggRDD) NumPartitions() int { return len(a.rows) }

// The paper's Section 6.1 argues SetRDD's mutability does not compromise
// fault recovery: the accumulated state acts as a checkpoint, so a failure
// replays only the current iteration's job. Checkpoint/Restore implement
// that mechanism — a per-partition snapshot taken before a merge, restored
// if the task must be replayed. Because the key index assigns dense
// insertion-ordered ids that parallel the append-only row slice, a
// checkpoint is just the partition's length (plus saved aggregate values
// for AggRDD); Restore truncates the index back to it. The snapshot itself
// is O(1) — the rebuild cost moves to the failure-replay path.

// SetCheckpoint captures one SetRDD partition's state.
type SetCheckpoint struct {
	part   int
	rowLen int
}

// Checkpoint snapshots a partition before a merge.
func (s *SetRDD) Checkpoint(part int) *SetCheckpoint {
	return &SetCheckpoint{part: part, rowLen: len(s.rows[part])}
}

// Restore rolls the partition back to the checkpoint, undoing any merges
// applied since.
func (s *SetRDD) Restore(cp *SetCheckpoint) {
	s.rows[cp.part] = s.rows[cp.part][:cp.rowLen]
	s.idx[cp.part].truncate(cp.rowLen)
}

// AggCheckpoint captures one AggRDD partition's state: the partition length
// plus the aggregate values (rows themselves are updated in place, so the
// values must be saved).
type AggCheckpoint struct {
	part   int
	rowLen int
	vals   []types.Value
}

// Checkpoint snapshots a partition before a merge.
func (a *AggRDD) Checkpoint(part int) *AggCheckpoint {
	cp := &AggCheckpoint{part: part, rowLen: len(a.rows[part])}
	cp.vals = make([]types.Value, cp.rowLen)
	for i, r := range a.rows[part] {
		cp.vals[i] = r[a.ValIdx]
	}
	return cp
}

// Restore rolls the partition back to the checkpoint: groups added since
// are dropped and updated aggregate values are reverted.
func (a *AggRDD) Restore(cp *AggCheckpoint) {
	a.rows[cp.part] = a.rows[cp.part][:cp.rowLen]
	a.idx[cp.part].truncate(cp.rowLen)
	for i, v := range cp.vals {
		a.rows[cp.part][i][a.ValIdx] = v
	}
}
