package cluster

import (
	"sync"
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

// relaxedChainConfig builds a small cluster for router tests.
func relaxedTestQuery(workers, parts int, sequential bool) *QueryContext {
	return New(Config{
		Workers:          workers,
		Partitions:       parts,
		SequentialStages: sequential,
		StageOverheadOps: 1,
	}).NewQuery(nil)
}

// runTokenChain routes decrementing tokens around the partition ring: a row
// [v] at partition p emits [v-1] to partition (p+1)%parts until v reaches
// zero. Every delivered row is tallied, so lost or duplicated deliveries
// are detectable, and the chain length forces multi-round clocks.
func runTokenChain(t *testing.T, q *QueryContext, parts, hops, staleness int) (RelaxedStats, int64) {
	t.Helper()
	var mu sync.Mutex
	var delivered int64
	seed := make([][]types.Row, parts)
	seed[0] = []types.Row{{types.Int(int64(hops))}}
	stats := q.RunRelaxed(RelaxedOptions{
		Name:      "test.chain",
		Parts:     parts,
		Owner:     func(p int) int { return p % q.Workers() },
		Staleness: staleness,
		Process: func(part, worker int, rows []types.Row, round int64, stale int) [][]types.Row {
			mu.Lock()
			delivered += int64(len(rows))
			mu.Unlock()
			out := make([][]types.Row, parts)
			for _, r := range rows {
				v := r[0].I
				if v > 0 {
					out[(part+1)%parts] = append(out[(part+1)%parts], types.Row{types.Int(v - 1)})
				}
			}
			return out
		},
	}, seed)
	return stats, delivered
}

func TestRelaxedQuiescence(t *testing.T) {
	for _, tc := range []struct {
		name       string
		sequential bool
		staleness  int
	}{
		{"parallel-async", false, -1},
		{"parallel-ssp0", false, 0},
		{"parallel-ssp2", false, 2},
		{"sequential-async", true, -1},
		{"sequential-ssp1", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const parts, hops = 4, 17
			q := relaxedTestQuery(4, parts, tc.sequential)
			stats, delivered := runTokenChain(t, q, parts, hops, tc.staleness)
			// The chain visits hops+1 partitions (seed + hops forwards).
			if delivered != hops+1 {
				t.Errorf("delivered %d rows, want %d", delivered, hops+1)
			}
			if stats.Batches != hops+1 {
				t.Errorf("Batches = %d, want %d", stats.Batches, hops+1)
			}
			// Each ring slot is visited ⌈(hops+1)/parts⌉ times at most.
			wantClock := int64((hops + parts) / parts)
			if stats.MaxClock != wantClock {
				t.Errorf("MaxClock = %d, want %d", stats.MaxClock, wantClock)
			}
			if got := q.Metrics.TasksRun.Load(); got != stats.Batches {
				t.Errorf("TasksRun = %d, want %d", got, stats.Batches)
			}
			if got := q.Metrics.StagesRun.Load(); got != 1 {
				t.Errorf("StagesRun = %d, want 1", got)
			}
		})
	}
}

// TestRelaxedStalenessGateBound pins the SSP invariant: under a staleness
// bound k no partition is ever scheduled more than k rounds ahead of the
// slowest partition that still has work.
func TestRelaxedStalenessGateBound(t *testing.T) {
	for _, k := range []int{0, 1, 4} {
		const parts, hops = 4, 40
		q := relaxedTestQuery(4, parts, false)
		stats, _ := runTokenChain(t, q, parts, hops, k)
		if stats.MaxClockLead > int64(k) {
			t.Errorf("k=%d: MaxClockLead = %d exceeds the bound", k, stats.MaxClockLead)
		}
	}
}

// TestRelaxedStaleReadAccounting drives takeLocked directly: a batch
// stamped more than one round before the consuming clock is a stale read.
func TestRelaxedStaleReadAccounting(t *testing.T) {
	q := relaxedTestQuery(2, 2, true)
	rt := &relaxedRouter{
		q:        q,
		opt:      RelaxedOptions{Parts: 2, Owner: func(p int) int { return p }},
		inbox:    make([][]relaxedBatch, 2),
		clock:    []int64{5, 0},
		inflight: make([]bool, 2),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.mu.Lock()
	// Fresh: produced at round 4, consumed at round 5.
	rt.inbox[0] = append(rt.inbox[0], relaxedBatch{rows: make([]types.Row, 3), n: 3, stamp: 4})
	// Stale: produced at round 1, consumed at round 5.
	rt.inbox[0] = append(rt.inbox[0], relaxedBatch{rows: make([]types.Row, 2), n: 2, stamp: 1})
	rt.outstanding = 2
	batches, round, stale := rt.takeLocked(0)
	rt.mu.Unlock()
	if round != 5 || len(batches) != 2 || stale != 2 {
		t.Fatalf("takeLocked: round=%d batches=%d stale=%d", round, len(batches), stale)
	}
	if got := q.Metrics.StaleReads.Load(); got != 2 {
		t.Errorf("StaleReads = %d, want 2 (only the stamp-1 batch rows)", got)
	}
}

// TestRelaxedGatePick drives pickLocked directly: the over-lead partition
// is gated under SSP and runnable under async.
func TestRelaxedGatePick(t *testing.T) {
	q := relaxedTestQuery(1, 2, true)
	mk := func(staleness int) *relaxedRouter {
		rt := &relaxedRouter{
			q:        q,
			opt:      RelaxedOptions{Parts: 2, Owner: func(int) int { return 0 }, Staleness: staleness},
			inbox:    make([][]relaxedBatch, 2),
			clock:    []int64{5, 2},
			inflight: make([]bool, 2),
		}
		rt.cond = sync.NewCond(&rt.mu)
		rt.mu.Lock()
		rt.inbox[0] = []relaxedBatch{{n: 1, stamp: 4}}
		rt.inbox[1] = []relaxedBatch{{n: 1, stamp: 1}}
		rt.outstanding = 2
		rt.mu.Unlock()
		return rt
	}

	rt := mk(1) // SSP(1): clock 5 vs slowest active 2 → lead 3 > 1, gated.
	rt.mu.Lock()
	part, ok, _ := rt.pickLocked(0)
	rt.mu.Unlock()
	if !ok || part != 1 {
		t.Errorf("ssp(1) pick = (%d, %v), want partition 1", part, ok)
	}

	// Only the gated partition pending: its producer-side slowest is itself
	// once partition 1 drains, so it becomes runnable — no deadlock.
	rt.mu.Lock()
	rt.inbox[1] = nil
	part, ok, gated := rt.pickLocked(0)
	rt.mu.Unlock()
	if !ok || part != 0 || gated {
		t.Errorf("solo pending pick = (%d, %v, gated=%v), want (0, true, false)", part, ok, gated)
	}

	rt = mk(-1) // async: no gate, lowest clock wins.
	rt.mu.Lock()
	part, ok, _ = rt.pickLocked(0)
	rt.mu.Unlock()
	if !ok || part != 1 {
		t.Errorf("async pick = (%d, %v), want partition 1 (lowest clock)", part, ok)
	}
}

// TestStageBarrierWaitCounter pins the BSP-side accounting: a stage whose
// workers finish at different times records the idle gap as barrier wait.
func TestStageBarrierWaitCounter(t *testing.T) {
	q := relaxedTestQuery(2, 2, true)
	tasks := []Task{
		{Part: 0, Preferred: 0, Run: func(int) { burn(2_000_000) }},
		{Part: 1, Preferred: 1, Run: func(int) {}},
	}
	q.RunStage("test.skewed", tasks)
	if got := q.Metrics.BarrierWaitNanos.Load(); got <= 0 {
		t.Errorf("BarrierWaitNanos = %d, want > 0 for a skewed stage", got)
	}
	// The wait can never exceed (active-1) × slowest.
	if wait, sim := q.Metrics.BarrierWaitNanos.Load(), q.Metrics.SimNanos.Load(); wait > sim {
		t.Errorf("BarrierWaitNanos %d exceeds stage critical path %d", wait, sim)
	}
}

// BenchmarkRelaxedTokenChain drives the relaxed router's locked hot path —
// enqueue, gate-checked pick, take, complete — through a multi-round token
// chain. Run with -benchmem: the routing state machine itself should
// contribute (near) nothing on top of the per-batch slices the Process
// callback builds.
//
//rasql:allocpin cluster.relaxedRouter.enqueueLocked cluster.relaxedRouter.pickLocked cluster.relaxedRouter.takeLocked cluster.relaxedRouter.completeLocked
func BenchmarkRelaxedTokenChain(b *testing.B) {
	const parts, hops = 4, 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := relaxedTestQuery(4, parts, true)
		seed := make([][]types.Row, parts)
		seed[0] = []types.Row{{types.Int(int64(hops))}}
		stats := q.RunRelaxed(RelaxedOptions{
			Name:      "bench.chain",
			Parts:     parts,
			Owner:     func(p int) int { return p % q.Workers() },
			Staleness: 1,
			Process: func(part, worker int, rows []types.Row, round int64, stale int) [][]types.Row {
				out := make([][]types.Row, parts)
				for _, r := range rows {
					if v := r[0].I; v > 0 {
						out[(part+1)%parts] = append(out[(part+1)%parts], types.Row{types.Int(v - 1)})
					}
				}
				return out
			},
		}, seed)
		if stats.Batches == 0 {
			b.Fatal("chain routed no batches")
		}
		q.Finish()
	}
}
