// Package cluster simulates a Spark-like shared-nothing cluster inside one
// process: hash-partitioned relations owned by workers, stages of tasks
// placed by a pluggable scheduling policy, shuffle exchanges, broadcasts and
// mutable cached state (SetRDD / AggRDD).
//
// The simulation makes the costs the RaSQL paper optimizes *real* rather
// than merely counted: whenever rows cross a worker boundary they are
// serialized and deserialized through the shuffle wire format (that is where
// Spark pays network + serialization cost), every stage pays a per-task
// scheduling overhead, and cached partitions are owned by a specific worker
// so locality-oblivious placement forces remote fetches. Optimizations such
// as partition-aware scheduling, stage combination and broadcast compression
// therefore change wall-clock time for the same structural reasons they do
// on a real cluster.
//
// A Cluster holds only immutable configuration and lifetime counter totals,
// so any number of queries may share it concurrently. All mutable execution
// state — stage sequencing, task queues, tracer, chaos injector, per-query
// counters — lives on the QueryContext one query obtains from NewQuery (see
// query.go).
package cluster

import (
	"runtime"
	"sync/atomic"

	"github.com/rasql/rasql-go/internal/obs"
)

// Policy chooses which worker runs each task of a stage.
type Policy int

const (
	// PolicyPartitionAware schedules a task onto the worker that owns its
	// cached partition (the paper's Section 6.1 scheduler extension).
	PolicyPartitionAware Policy = iota
	// PolicyHybrid models Spark's default locality-oblivious placement
	// for iterative jobs: tasks are handed to whichever executor frees up,
	// so across iterations a partition's task usually lands on a different
	// worker than the one caching its input, forcing remote fetches.
	PolicyHybrid
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyPartitionAware {
		return "partition-aware"
	}
	return "hybrid"
}

// Config parameterizes a simulated cluster.
type Config struct {
	// Workers is the number of simulated worker nodes. Defaults to
	// GOMAXPROCS.
	Workers int
	// Partitions is the number of data partitions. Defaults to Workers.
	Partitions int
	// Policy is the task placement policy. Defaults to PolicyPartitionAware.
	Policy Policy
	// CompressBroadcast enables varint-compressed raw-relation broadcast
	// with per-worker hash-table builds (the paper's Section 7.2
	// optimization). When false, the master builds the hash table and
	// ships the hashed relation, which is 2-3x larger.
	CompressBroadcast bool
	// StageOverheadOps is the simulated per-task launch cost, in
	// iterations of a small hash loop (~ns each). It models scheduler RPC,
	// task deserialization and setup. Defaults to 20000 (~10-20µs).
	StageOverheadOps int
	// ImmutableState forces SetRDD/AggRDD to copy their entire contents
	// on every union instead of mutating in place — the behaviour of
	// vanilla immutable RDDs, kept for ablation benchmarks.
	ImmutableState bool
	// ShufflePenaltyOpsPerByte burns extra CPU per shuffled byte,
	// modelling a communication layer that degrades with volume (used by
	// the Myria comparator profile, which the paper describes as fast on
	// small inputs but poorly scaling on large ones).
	ShufflePenaltyOpsPerByte int
	// SequentialStages runs each stage's worker queues one after another on
	// the driver goroutine instead of the default of one goroutine per
	// worker. Both modes record simulated elapsed time (SimNanos) as the
	// maximum per-worker busy time of each stage — what a real cluster's
	// stage barrier waits for — so scaling experiments stay meaningful
	// either way; sequential mode exists for debugging and for deterministic
	// single-threaded profiling.
	SequentialStages bool
	// Chaos configures the deterministic fault injector (see chaos.go). The
	// zero value disables it entirely; a disabled injector costs one nil
	// check per stage/fetch and zero allocations.
	Chaos ChaosConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		// Simulated workers, not OS threads: default to a small cluster
		// even on single-core machines (sequential mode keeps the
		// simulated clock meaningful there).
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 4 {
			c.Workers = 4
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	if c.StageOverheadOps == 0 {
		c.StageOverheadOps = 20000
	}
	if c.StageOverheadOps < 0 {
		c.StageOverheadOps = 0
	}
	return c
}

// Cluster is a simulated cluster: immutable configuration plus lifetime
// counter totals. It is safe for concurrent use by any number of queries —
// all per-query mutable state (stage sequencing, tracer, chaos injector,
// task-queue scratch) lives on the QueryContext returned by NewQuery.
type Cluster struct {
	cfg Config
	// Metrics accumulates lifetime totals across every query run on this
	// cluster. Queries count into their own per-query Metrics and fold the
	// result in here when their QueryContext finishes; the counters are
	// atomic, so concurrent folds and snapshots need no lock.
	Metrics Metrics
	// queryID issues engine-wide query sequence numbers (1-based); the ID
	// stamps the query's trace events, its QueryStats record and its
	// query-log line.
	queryID atomic.Uint64
	// observer, when non-nil, receives the lifecycle of every query: a
	// QueryStarted at NewQuery and one QueryStats fold at Finish. Set once
	// at engine construction, before any query runs.
	observer obs.QueryObserver
}

// New creates a cluster from the config (zero values get defaults).
func New(cfg Config) *Cluster {
	return &Cluster{cfg: cfg.withDefaults()}
}

// SetObserver attaches the per-query stats observer (the engine's metrics
// recorder). Call before running queries: the field is read un-locked by
// every NewQuery/Finish.
func (c *Cluster) SetObserver(o obs.QueryObserver) { c.observer = o }

// Config returns the effective (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Workers returns the number of simulated workers.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Partitions returns the default partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions }

// Task is one unit of stage work bound to a partition.
type Task struct {
	// Part is the partition index this task processes.
	Part int
	// Preferred is the worker that owns this task's cached input, or -1.
	Preferred int
	// Run executes the task body on the assigned worker.
	Run func(worker int)
	// Rollback, when set, undoes any cached-state mutation a failed attempt
	// left behind so Run can be replayed. Only consulted under an enabled
	// fault injector; runs on the same goroutine as the failed attempt.
	Rollback func()
}

// DefaultOwner returns the canonical owner worker for a partition.
func (c *Cluster) DefaultOwner(part int) int { return part % c.cfg.Workers }

// burn spins a tiny hash loop to simulate fixed scheduling overhead.
func burn(ops int) {
	h := uint64(1469598103934665603)
	for i := 0; i < ops; i++ {
		h = (h ^ uint64(i)) * 1099511628211
	}
	burnSink.Store(h) // defeat dead-code elimination
}

// burnSink is a write-only sink that keeps the compiler from eliminating
// burn's hash loop. It is package-level shared mutable state, yet exempt
// from a guardedby mutex: it is an atomic value that is only ever written
// (atomically, by concurrent tasks) and never read, so no lock could change
// any observable behaviour. The atomicmix analyzer still covers it — any
// future plain (non-atomic) access anywhere in the engine is a diagnostic.
// See internal/analysis/annotations.go for the exemption rationale.
var burnSink atomic.Uint64
