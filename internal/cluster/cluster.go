// Package cluster simulates a Spark-like shared-nothing cluster inside one
// process: hash-partitioned relations owned by workers, stages of tasks
// placed by a pluggable scheduling policy, shuffle exchanges, broadcasts and
// mutable cached state (SetRDD / AggRDD).
//
// The simulation makes the costs the RaSQL paper optimizes *real* rather
// than merely counted: whenever rows cross a worker boundary they are
// serialized and deserialized through the shuffle wire format (that is where
// Spark pays network + serialization cost), every stage pays a per-task
// scheduling overhead, and cached partitions are owned by a specific worker
// so locality-oblivious placement forces remote fetches. Optimizations such
// as partition-aware scheduling, stage combination and broadcast compression
// therefore change wall-clock time for the same structural reasons they do
// on a real cluster.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// Policy chooses which worker runs each task of a stage.
type Policy int

const (
	// PolicyPartitionAware schedules a task onto the worker that owns its
	// cached partition (the paper's Section 6.1 scheduler extension).
	PolicyPartitionAware Policy = iota
	// PolicyHybrid models Spark's default locality-oblivious placement
	// for iterative jobs: tasks are handed to whichever executor frees up,
	// so across iterations a partition's task usually lands on a different
	// worker than the one caching its input, forcing remote fetches.
	PolicyHybrid
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyPartitionAware {
		return "partition-aware"
	}
	return "hybrid"
}

// Config parameterizes a simulated cluster.
type Config struct {
	// Workers is the number of simulated worker nodes. Defaults to
	// GOMAXPROCS.
	Workers int
	// Partitions is the number of data partitions. Defaults to Workers.
	Partitions int
	// Policy is the task placement policy. Defaults to PolicyPartitionAware.
	Policy Policy
	// CompressBroadcast enables varint-compressed raw-relation broadcast
	// with per-worker hash-table builds (the paper's Section 7.2
	// optimization). When false, the master builds the hash table and
	// ships the hashed relation, which is 2-3x larger.
	CompressBroadcast bool
	// StageOverheadOps is the simulated per-task launch cost, in
	// iterations of a small hash loop (~ns each). It models scheduler RPC,
	// task deserialization and setup. Defaults to 20000 (~10-20µs).
	StageOverheadOps int
	// ImmutableState forces SetRDD/AggRDD to copy their entire contents
	// on every union instead of mutating in place — the behaviour of
	// vanilla immutable RDDs, kept for ablation benchmarks.
	ImmutableState bool
	// ShufflePenaltyOpsPerByte burns extra CPU per shuffled byte,
	// modelling a communication layer that degrades with volume (used by
	// the Myria comparator profile, which the paper describes as fast on
	// small inputs but poorly scaling on large ones).
	ShufflePenaltyOpsPerByte int
	// SequentialStages runs each stage's worker queues one after another on
	// the driver goroutine instead of the default of one goroutine per
	// worker. Both modes record simulated elapsed time (SimNanos) as the
	// maximum per-worker busy time of each stage — what a real cluster's
	// stage barrier waits for — so scaling experiments stay meaningful
	// either way; sequential mode exists for debugging and for deterministic
	// single-threaded profiling.
	SequentialStages bool
	// Chaos configures the deterministic fault injector (see chaos.go). The
	// zero value disables it entirely; a disabled injector costs one nil
	// check per stage/fetch and zero allocations.
	Chaos ChaosConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		// Simulated workers, not OS threads: default to a small cluster
		// even on single-core machines (sequential mode keeps the
		// simulated clock meaningful there).
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 4 {
			c.Workers = 4
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	if c.StageOverheadOps == 0 {
		c.StageOverheadOps = 20000
	}
	if c.StageOverheadOps < 0 {
		c.StageOverheadOps = 0
	}
	return c
}

// Cluster is a simulated cluster. It is safe for use by one driver
// goroutine; tasks inside a stage run concurrently on worker goroutines.
type Cluster struct {
	cfg     Config
	Metrics Metrics
	// Tracer, when non-nil, records stage and task spans (one track per
	// worker). The nil default costs one pointer check per stage; the
	// per-task span is only built when span recording is on.
	Tracer *trace.Tracer
	// stageSeq advances per stage; the hybrid policy uses it to rotate
	// task placement, modeling executors picking up whichever task is
	// next when they free up.
	stageSeq int
	// queues is per-worker task-queue scratch reused across stages (the
	// stage barrier guarantees no queue outlives its RunStage call).
	queues [][]Task
	// slowest is per-stage scratch for the critical-path sim-time of the
	// current stage; a field (not a RunStage local) so worker goroutines
	// don't force a heap allocation per stage capturing it.
	slowest atomic.Int64
	// chaos is the fault injector, nil unless Config.Chaos enables it.
	chaos *injector
}

// New creates a cluster from the config (zero values get defaults).
func New(cfg Config) *Cluster {
	c := &Cluster{cfg: cfg.withDefaults()}
	if c.cfg.Chaos.Enabled() {
		c.chaos = newInjector(c.cfg.Chaos, c.cfg.Workers)
	}
	return c
}

// Config returns the effective (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Workers returns the number of simulated workers.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Partitions returns the default partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions }

// Task is one unit of stage work bound to a partition.
type Task struct {
	// Part is the partition index this task processes.
	Part int
	// Preferred is the worker that owns this task's cached input, or -1.
	Preferred int
	// Run executes the task body on the assigned worker.
	Run func(worker int)
	// Rollback, when set, undoes any cached-state mutation a failed attempt
	// left behind so Run can be replayed. Only consulted under an enabled
	// fault injector; runs on the same goroutine as the failed attempt.
	Rollback func()
}

// RunStage places the tasks per the scheduling policy and executes them,
// each simulated worker draining its queue sequentially. By default the
// worker queues run on real goroutines; with SequentialStages they run one
// after another on the caller. Either way the stage contributes
// max(per-worker busy time) to the simulated clock (SimNanos) — what a real
// cluster's stage barrier would wait for — so the simulated clock is
// independent of how many queues actually overlap on the host. The name is
// for debugging/tracing only.
func (c *Cluster) RunStage(name string, tasks []Task) {
	c.Metrics.StagesRun.Add(1)
	c.Metrics.TasksRun.Add(int64(len(tasks)))
	seq := c.stageSeq
	c.stageSeq++

	if len(c.queues) != c.cfg.Workers {
		c.queues = make([][]Task, c.cfg.Workers)
	}
	queues := c.queues
	for i := range queues {
		queues[i] = queues[i][:0]
	}
	for _, t := range tasks {
		w := c.place(t, seq)
		queues[w] = append(queues[w], t)
	}

	spans := c.Tracer.SpansEnabled()
	var stageSpan trace.Span
	if spans {
		stageSpan = c.Tracer.BeginArgs("stage "+name, trace.TidDriver,
			trace.Arg{Key: "tasks", Val: int64(len(tasks))})
	}
	var sc *stageChaos
	if c.chaos != nil {
		sc = c.chaos.beginStage(name, seq)
	}
	start := startStopwatch()
	c.slowest.Store(0)
	if c.cfg.SequentialStages {
		for w, q := range queues {
			if len(q) > 0 {
				c.runQueue(w, q, name, spans, sc)
			}
		}
	} else {
		var wg sync.WaitGroup
		for w, q := range queues {
			if len(q) == 0 {
				continue
			}
			wg.Add(1)
			// All loop/stage state is passed as arguments: capturing sc (or
			// name/spans) by reference would heap-allocate them even on the
			// sequential path, which never builds this closure.
			go func(w int, q []Task, name string, spans bool, sc *stageChaos) {
				defer wg.Done()
				c.runQueue(w, q, name, spans, sc)
			}(w, q, name, spans, sc)
		}
		wg.Wait()
	}
	c.Metrics.StageWallNanos.Add(start.elapsedNanos())
	c.Metrics.SimNanos.Add(c.slowest.Load())
	stageSpan.End()
}

// runQueue drains one worker's task queue for the current stage. A method
// rather than a RunStage closure so the sequential (and benchmark-pinned)
// path stays allocation-free; only the parallel branch pays for its
// per-worker goroutine closures.
func (c *Cluster) runQueue(w int, q []Task, name string, spans bool, sc *stageChaos) {
	t0 := startStopwatch()
	for _, t := range q {
		burn(c.cfg.StageOverheadOps)
		if sc != nil {
			c.runTaskChaos(sc, t, w, spans, name)
		} else if spans {
			s := c.Tracer.BeginArgs(name, trace.TidWorker(w),
				trace.Arg{Key: "part", Val: int64(t.Part)})
			t.Run(w)
			s.End()
		} else {
			t.Run(w)
		}
	}
	d := t0.elapsedNanos()
	for {
		cur := c.slowest.Load()
		if d <= cur || c.slowest.CompareAndSwap(cur, d) {
			break
		}
	}
}

func (c *Cluster) place(t Task, seq int) int {
	switch c.cfg.Policy {
	case PolicyPartitionAware:
		if t.Preferred >= 0 {
			return t.Preferred % c.cfg.Workers
		}
		return t.Part % c.cfg.Workers
	default: // PolicyHybrid: rotate placement each stage.
		return (t.Part + seq) % c.cfg.Workers
	}
}

// DefaultOwner returns the canonical owner worker for a partition.
func (c *Cluster) DefaultOwner(part int) int { return part % c.cfg.Workers }

// burn spins a tiny hash loop to simulate fixed scheduling overhead.
func burn(ops int) {
	h := uint64(1469598103934665603)
	for i := 0; i < ops; i++ {
		h = (h ^ uint64(i)) * 1099511628211
	}
	burnSink.Store(h) // defeat dead-code elimination
}

var burnSink atomic.Uint64

// transfer moves rows across a worker boundary: it pays the full
// serialize + deserialize cost and records the bytes, exactly as a remote
// fetch over the network would.
func (c *Cluster) transfer(rows []types.Row) []types.Row {
	if len(rows) == 0 {
		return nil
	}
	bp := getEncBuf()
	*bp = types.AppendRows((*bp)[:0], rows)
	c.Metrics.RemoteFetchBytes.Add(int64(len(*bp)))
	out, err := types.DecodeRowsAppend(make([]types.Row, 0, len(rows)), *bp)
	putEncBuf(bp)
	if err != nil {
		// The buffer was produced by AppendRows in the same process; a
		// decode failure is a programming error, not an I/O condition.
		panic(fmt.Sprintf("cluster: internal wire corruption: %v", err))
	}
	return out
}

// Fetch returns a partition's rows as seen from the given worker: free for
// the owner, serialized round trip for anyone else. Under chaos, rows a
// retrying task fetches again are counted as replayed (wasted) work.
func (c *Cluster) Fetch(rows []types.Row, owner, onWorker int) []types.Row {
	if c.chaos != nil {
		c.chaos.replayRows(c, onWorker, len(rows))
	}
	if owner == onWorker {
		c.Metrics.LocalFetchRows.Add(int64(len(rows)))
		return rows
	}
	return c.transfer(rows)
}
