package cluster

import (
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

func TestSetRDDMergeDedups(t *testing.T) {
	for _, immutable := range []bool{false, true} {
		c := New(Config{Workers: 2, Partitions: 2, StageOverheadOps: -1, ImmutableState: immutable})
		s := c.NewSetRDD(pairSchema())
		d1 := s.Merge(0, intRows([2]int64{1, 2}, [2]int64{1, 2}, [2]int64{3, 4}))
		if len(d1) != 2 {
			t.Errorf("immutable=%v: first merge delta = %d, want 2", immutable, len(d1))
		}
		d2 := s.Merge(0, intRows([2]int64{1, 2}, [2]int64{5, 6}))
		if len(d2) != 1 || !d2[0].Equal(types.Row{types.Int(5), types.Int(6)}) {
			t.Errorf("immutable=%v: second merge delta = %v", immutable, d2)
		}
		if s.Len() != 3 {
			t.Errorf("immutable=%v: Len = %d, want 3", immutable, s.Len())
		}
		if !s.Contains(0, types.Row{types.Int(3), types.Int(4)}) {
			t.Errorf("immutable=%v: Contains failed", immutable)
		}
		if s.Contains(0, types.Row{types.Int(9), types.Int(9)}) {
			t.Errorf("immutable=%v: Contains false positive", immutable)
		}
		if len(s.Rows(0)) != 3 || len(s.Rows(1)) != 0 {
			t.Errorf("immutable=%v: Rows per partition wrong", immutable)
		}
	}
}

func aggRow(k int64, v float64) types.Row {
	return types.Row{types.Int(k), types.Float(v)}
}

func TestAggRDDMinMerge(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(types.NewSchema(types.Col("Dst", types.KindInt), types.Col("Cost", types.KindFloat)),
		[]int{0}, 1, types.AggMin)

	d := a.Merge(0, []types.Row{aggRow(1, 5), aggRow(2, 7)})
	if len(d.Rows) != 2 || d.Incs != nil {
		t.Fatalf("fresh groups delta = %v", d)
	}
	// Improvement produces a delta; a worse value does not.
	d = a.Merge(0, []types.Row{aggRow(1, 3), aggRow(2, 9)})
	if len(d.Rows) != 1 || !d.Rows[0].Equal(aggRow(1, 3)) {
		t.Fatalf("improvement delta = %v", d.Rows)
	}
	// Equal value is not an improvement.
	if d = a.Merge(0, []types.Row{aggRow(1, 3)}); !d.Empty() {
		t.Errorf("equal value should not produce delta: %v", d.Rows)
	}
	// Stored value reflects the improvement.
	row, ok := a.Lookup(0, aggRow(1, 0))
	if !ok || !row[1].Equal(types.Float(3)) {
		t.Errorf("stored value = %v", row)
	}
}

func TestAggRDDMaxMerge(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggMax)
	a.Merge(0, []types.Row{aggRow(1, 5)})
	if d := a.Merge(0, []types.Row{aggRow(1, 4)}); !d.Empty() {
		t.Error("smaller value should not improve max")
	}
	if d := a.Merge(0, []types.Row{aggRow(1, 6)}); len(d.Rows) != 1 {
		t.Error("larger value should improve max")
	}
}

func pairSchemaFloat() types.Schema {
	return types.NewSchema(types.Col("K", types.KindInt), types.Col("V", types.KindFloat))
}

func TestAggRDDSumCarriesIncrements(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggSum)

	d := a.Merge(0, []types.Row{aggRow(1, 10)})
	if len(d.Rows) != 1 || !d.Rows[0][1].Equal(types.Float(10)) || !d.Incs[0].Equal(types.Float(10)) {
		t.Fatalf("fresh sum delta = %+v", d)
	}
	d = a.Merge(0, []types.Row{aggRow(1, 5)})
	if len(d.Rows) != 1 || !d.Rows[0][1].Equal(types.Float(15)) || !d.Incs[0].Equal(types.Float(5)) {
		t.Fatalf("sum delta should carry total 15 and increment 5: %+v", d)
	}
	// Zero increments derive nothing.
	if d = a.Merge(0, []types.Row{aggRow(1, 0), aggRow(2, 0)}); !d.Empty() {
		t.Errorf("zero increments should produce no delta: %+v", d)
	}
}

func TestAggRDDSumMultipleContributionsInBatch(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggSum)
	a.Merge(0, []types.Row{aggRow(1, 1), aggRow(1, 2), aggRow(1, 3)})
	row, ok := a.Lookup(0, aggRow(1, 0))
	if !ok || !row[1].Equal(types.Float(6)) {
		t.Errorf("batched sum = %v, want 6", row)
	}
}

func TestAggRDDImmutableStateCopies(t *testing.T) {
	c := New(Config{Workers: 2, Partitions: 2, StageOverheadOps: -1, ImmutableState: true})
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggMin)
	a.Merge(0, []types.Row{aggRow(1, 5)})
	a.Merge(0, []types.Row{aggRow(1, 3)})
	row, ok := a.Lookup(0, aggRow(1, 0))
	if !ok || !row[1].Equal(types.Float(3)) {
		t.Errorf("immutable merge result = %v", row)
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestAggRDDDeltaAliasesState(t *testing.T) {
	// Documented ownership: delta rows alias stored state and are
	// read-only snapshots, consumed before the next merge.
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggMin)
	d := a.Merge(0, []types.Row{aggRow(1, 5)})
	if !d.Rows[0][1].Equal(types.Float(5)) {
		t.Errorf("delta value = %v", d.Rows[0][1])
	}
	a.Merge(0, []types.Row{aggRow(1, 3)})
	row, _ := a.Lookup(0, aggRow(1, 0))
	if !row[1].Equal(types.Float(3)) {
		t.Errorf("stored value = %v", row[1])
	}
}

func TestPartialAggregate(t *testing.T) {
	rows := []types.Row{aggRow(1, 5), aggRow(1, 3), aggRow(2, 7), aggRow(1, 9)}
	out := types.PartialAggregate(rows, []int{0}, 1, types.AggMin)
	if len(out) != 2 {
		t.Fatalf("partial agg groups = %d", len(out))
	}
	vals := map[int64]float64{}
	for _, r := range out {
		vals[r[0].AsInt()] = r[1].AsFloat()
	}
	if vals[1] != 3 || vals[2] != 7 {
		t.Errorf("partial min = %v", vals)
	}
	out = types.PartialAggregate(rows, []int{0}, 1, types.AggSum)
	vals = map[int64]float64{}
	for _, r := range out {
		vals[r[0].AsInt()] = r[1].AsFloat()
	}
	if vals[1] != 17 || vals[2] != 7 {
		t.Errorf("partial sum = %v", vals)
	}
	// Input rows must not be mutated (they may alias cached state).
	if !rows[0].Equal(aggRow(1, 5)) {
		t.Error("PartialAggregate mutated its input")
	}
}

func TestBroadcastBothModes(t *testing.T) {
	rows := intRows([2]int64{1, 10}, [2]int64{1, 11}, [2]int64{2, 20})
	var sizes [2]int64
	for i, compress := range []bool{false, true} {
		c := New(Config{Workers: 3, Partitions: 3, StageOverheadOps: -1, CompressBroadcast: compress}).NewQuery(nil)
		b := c.Broadcast(rows, pairSchema(), []int{0})
		for w := 0; w < 3; w++ {
			tab := b.Table(w)
			if tab.Len() != 2 {
				t.Fatalf("compress=%v worker %d: %d keys, want 2", compress, w, tab.Len())
			}
			if got := tab.ProbeValues([]types.Value{types.Int(1)}); len(got) != 2 {
				t.Errorf("compress=%v: key 1 bucket = %d rows", compress, len(got))
			}
		}
		sizes[i] = c.Metrics.Snapshot().BroadcastBytes
	}
	if sizes[1] >= sizes[0] {
		t.Errorf("compressed broadcast (%d bytes) should be smaller than hashed (%d bytes)",
			sizes[1], sizes[0])
	}
}

func TestCountContribution(t *testing.T) {
	if !types.CountContribution(types.Int(5)).Equal(types.Int(5)) {
		t.Error("numeric count contributions propagate")
	}
	if !types.CountContribution(types.Str("bob")).Equal(types.Int(1)) {
		t.Error("non-numeric count contributions count as 1")
	}
}

func TestSetRDDCheckpointRestore(t *testing.T) {
	c := newTestCluster(2, 2)
	s := c.NewSetRDD(pairSchema())
	s.Merge(0, intRows([2]int64{1, 2}))
	cp := s.Checkpoint(0)
	s.Merge(0, intRows([2]int64{3, 4}, [2]int64{5, 6}))
	s.Restore(cp)
	if s.Len() != 1 || s.Contains(0, types.Row{types.Int(3), types.Int(4)}) {
		t.Fatalf("restore failed: len=%d", s.Len())
	}
	// Replaying the same merge after restore yields the same delta.
	d := s.Merge(0, intRows([2]int64{3, 4}, [2]int64{5, 6}))
	if len(d) != 2 || s.Len() != 3 {
		t.Errorf("replay delta = %d, len = %d", len(d), s.Len())
	}
}

func TestAggRDDCheckpointRestoreAdditive(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggSum)
	a.Merge(0, []types.Row{aggRow(1, 10)})
	cp := a.Checkpoint(0)
	a.Merge(0, []types.Row{aggRow(1, 5), aggRow(2, 7)})
	a.Restore(cp)
	row, ok := a.Lookup(0, aggRow(1, 0))
	if !ok || !row[1].Equal(types.Float(10)) {
		t.Fatalf("restored total = %v", row)
	}
	if _, ok := a.Lookup(0, aggRow(2, 0)); ok {
		t.Fatal("new group should be gone after restore")
	}
	// Replay: exactly-once accumulation despite the earlier failed merge.
	a.Merge(0, []types.Row{aggRow(1, 5), aggRow(2, 7)})
	row, _ = a.Lookup(0, aggRow(1, 0))
	if !row[1].Equal(types.Float(15)) {
		t.Errorf("replayed total = %v, want 15", row[1])
	}
}

func TestAggRDDCheckpointRestoreExtremum(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggMin)
	a.Merge(0, []types.Row{aggRow(1, 10)})
	cp := a.Checkpoint(0)
	a.Merge(0, []types.Row{aggRow(1, 3)})
	a.Restore(cp)
	row, _ := a.Lookup(0, aggRow(1, 0))
	if !row[1].Equal(types.Float(10)) {
		t.Errorf("restored extremum = %v", row[1])
	}
}

// Restore must revert a merge that both improved existing groups and added
// new ones, and leave the key index consistent for the replay.
func TestAggRDDCheckpointRestoreMixedMerge(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggMin)
	a.Merge(0, []types.Row{aggRow(1, 10), aggRow(2, 20)})
	cp := a.Checkpoint(0)
	a.Merge(0, []types.Row{aggRow(1, 4), aggRow(3, 30), aggRow(2, 25)})
	a.Restore(cp)
	if a.Len() != 2 {
		t.Fatalf("Len after restore = %d, want 2", a.Len())
	}
	for k, want := range map[int64]float64{1: 10, 2: 20} {
		row, ok := a.Lookup(0, aggRow(k, 0))
		if !ok || !row[1].Equal(types.Float(want)) {
			t.Errorf("group %d after restore = %v, want %v", k, row, want)
		}
	}
	if _, ok := a.Lookup(0, aggRow(3, 0)); ok {
		t.Error("group 3 survived restore")
	}
	// The replayed merge lands identically: 1 improves, 3 is new, 2 does not.
	d := a.Merge(0, []types.Row{aggRow(1, 4), aggRow(3, 30), aggRow(2, 25)})
	if len(d.Rows) != 2 {
		t.Fatalf("replay delta = %v, want rows for groups 1 and 3", d.Rows)
	}
	row, _ := a.Lookup(0, aggRow(2, 0))
	if !row[1].Equal(types.Float(20)) {
		t.Errorf("group 2 after replay = %v, want 20", row[1])
	}
}

// Checkpointing a partition that has never seen a merge must work: the
// recovery path snapshots every task up front, including those whose
// partition receives no rows.
func TestCheckpointEmptyPartition(t *testing.T) {
	c := newTestCluster(2, 2)
	s := c.NewSetRDD(pairSchema())
	scp := s.Checkpoint(1)
	s.Merge(1, intRows([2]int64{7, 8}))
	s.Restore(scp)
	if s.Len() != 0 || len(s.Rows(1)) != 0 {
		t.Errorf("SetRDD empty-partition restore left %d rows", s.Len())
	}
	if d := s.Merge(1, intRows([2]int64{7, 8})); len(d) != 1 {
		t.Errorf("replay after empty restore delta = %d, want 1", len(d))
	}

	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggSum)
	acp := a.Checkpoint(1)
	a.Merge(1, []types.Row{aggRow(1, 5)})
	a.Restore(acp)
	if a.Len() != 0 {
		t.Errorf("AggRDD empty-partition restore left %d groups", a.Len())
	}
	a.Merge(1, []types.Row{aggRow(1, 5)})
	if row, ok := a.Lookup(1, aggRow(1, 0)); !ok || !row[1].Equal(types.Float(5)) {
		t.Errorf("replay after empty restore = %v, want 5", row)
	}
}

// Restoring the same checkpoint twice is a no-op the second time — the
// retry loop may roll back again if a second attempt also dies.
func TestCheckpointDoubleRestoreIdempotent(t *testing.T) {
	c := newTestCluster(2, 2)
	s := c.NewSetRDD(pairSchema())
	s.Merge(0, intRows([2]int64{1, 2}))
	scp := s.Checkpoint(0)
	s.Merge(0, intRows([2]int64{3, 4}))
	s.Restore(scp)
	s.Restore(scp)
	if s.Len() != 1 || !s.Contains(0, types.Row{types.Int(1), types.Int(2)}) {
		t.Errorf("double restore corrupted SetRDD: len=%d", s.Len())
	}

	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggSum)
	a.Merge(0, []types.Row{aggRow(1, 10)})
	acp := a.Checkpoint(0)
	a.Merge(0, []types.Row{aggRow(1, 5), aggRow(2, 1)})
	a.Restore(acp)
	a.Merge(0, []types.Row{aggRow(1, 2)}) // second attempt gets partway…
	a.Restore(acp)                        // …and dies too
	row, ok := a.Lookup(0, aggRow(1, 0))
	if !ok || !row[1].Equal(types.Float(10)) || a.Len() != 1 {
		t.Errorf("double restore corrupted AggRDD: %v len=%d", row, a.Len())
	}
}

// Regression for the replay double-count bug: a batch with two contributions
// to the same fresh group updates the stored row's value column in place. If
// Merge adopts the caller's row for the new group instead of cloning it, that
// in-place update corrupts the input batch — and a restore-then-replay of the
// same slice (exactly what task retry does) double-counts.
func TestAggRDDRestoreThenReplaySameSlice(t *testing.T) {
	c := newTestCluster(2, 2)
	a := c.NewAggRDD(pairSchemaFloat(), []int{0}, 1, types.AggSum)
	batch := []types.Row{aggRow(1, 1), aggRow(1, 2)}
	cp := a.Checkpoint(0)
	a.Merge(0, batch)
	if !batch[0][1].Equal(types.Float(1)) || !batch[1][1].Equal(types.Float(2)) {
		t.Fatalf("Merge mutated its input batch: %v", batch)
	}
	a.Restore(cp)
	a.Merge(0, batch)
	row, ok := a.Lookup(0, aggRow(1, 0))
	if !ok || !row[1].Equal(types.Float(3)) {
		t.Errorf("replayed total = %v, want 3 (double-count bug)", row)
	}
}
