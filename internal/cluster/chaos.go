package cluster

import "github.com/rasql/rasql-go/internal/trace"

// The deterministic fault injector. The paper's recovery story (Section 6.1)
// is that SetRDD gives up lineage, so the accumulated *all* relation is its
// own checkpoint and a failure replays only the current iteration's job. The
// injector makes that path executable: it kills task attempts at the
// boundaries where a real cluster loses work (task launch, shuffle fetch,
// mid-task executor loss) and RunStage replays the attempt after invoking the
// task's Rollback — the engine-supplied partition restore.
//
// Every decision is a pure function of (config seed, stage sequence,
// partition, attempt, fault kind). No wall clock, no global rand, and no
// dependence on which worker the task landed on, so a chaos run replays the
// identical fault schedule every time — which is what lets the differential
// harness assert bit-identical results against the fault-free run.

// FaultKind enumerates the injectable faults.
type FaultKind uint8

const (
	// FaultTaskStart kills the attempt before the task body runs — a task
	// that never launched (scheduler RPC lost, executor rejected it).
	FaultTaskStart FaultKind = iota
	// FaultWorkerLoss simulates losing the executor mid-attempt: the
	// worker's broadcast cache blocks are invalidated (they rebuild lazily
	// from the retained wire, paying the broadcast bytes again) and the
	// attempt dies.
	FaultWorkerLoss
	// FaultFetch kills the attempt at the shuffle-fetch boundary, before
	// any bucket is consumed — a failed shuffle block fetch.
	FaultFetch
	// FaultPostMerge kills the attempt after the engine merged into cached
	// state but before it published output — the case that exercises
	// checkpoint rollback rather than plain replay.
	FaultPostMerge
	// FaultStraggler does not kill anything: the attempt burns extra
	// simulated CPU, modelling a slow executor. It surfaces in SimNanos.
	FaultStraggler

	numFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultTaskStart:
		return "task-start"
	case FaultWorkerLoss:
		return "worker-loss"
	case FaultFetch:
		return "fetch"
	case FaultPostMerge:
		return "post-merge"
	case FaultStraggler:
		return "straggler"
	}
	return "unknown"
}

// ChaosEvent pins one fault to a specific decision point, independent of the
// probabilistic rate — the way tests script "kill partition 2's first
// attempt of the third map pass" deterministically.
type ChaosEvent struct {
	// Stage matches the RunStage name; empty matches every stage.
	Stage string
	// Occurrence is the 0-based count of stages with this name seen so far
	// (pass 3 of "fixpoint.shufflemap" is Occurrence 2); -1 matches all.
	Occurrence int
	// Part is the task's partition.
	Part int
	// Attempt is the 0-based attempt the fault fires on.
	Attempt int
	// Kind is the fault to inject.
	Kind FaultKind
}

// ChaosConfig configures the fault injector. The zero value disables it.
type ChaosConfig struct {
	// Seed drives the probabilistic schedule; two runs with the same seed,
	// rate and workload inject the same faults.
	Seed int64
	// Rate is the per-(decision point) fault probability in [0, 1). Each
	// task attempt exposes one decision point per fault kind.
	Rate float64
	// MaxAttempts bounds the retry loop: the injector never fires on the
	// last attempt, so every task eventually succeeds. Defaults to 3.
	MaxAttempts int
	// StragglerOps is the extra simulated CPU a straggler burns. Defaults
	// to 50000 (~25-50µs of sim time).
	StragglerOps int
	// Schedule pins additional deterministic faults on top of Rate.
	Schedule []ChaosEvent
}

// Enabled reports whether this config injects anything.
func (c ChaosConfig) Enabled() bool { return c.Rate > 0 || len(c.Schedule) > 0 }

// injector holds the runtime state of an enabled chaos config. It lives on
// the QueryContext behind a single nil check, so a disabled injector costs
// one predictable branch on the stage and fetch hot paths and nothing else
// (pinned by BenchmarkDisabledInjector). Each query gets its own injector,
// so the fault schedule depends only on the query's own stage sequence.
type injector struct {
	cfg       ChaosConfig
	seed      uint64
	threshold uint64 // Rate mapped onto the uint64 hash range
	// ctx[w] is the chaos context of the task currently running on worker
	// w. Each worker's queue drains on one goroutine and driver-side code
	// passes worker -1, so the slots are data-race free without locks.
	ctx []chaosTaskCtx
	// stageRuns counts occurrences per stage name (driver-side only).
	stageRuns map[string]int
	// broadcasts registers live broadcasts for worker-loss invalidation.
	// Appended driver-side between stages; read by worker goroutines during
	// a stage — the stage barrier orders the two.
	broadcasts []*Broadcast
}

type chaosTaskCtx struct {
	sc      *stageChaos
	part    int
	attempt int
}

// stageChaos scopes injector decisions to one RunStage call.
type stageChaos struct {
	inj  *injector
	name string
	seq  int
	occ  int
}

func newInjector(cfg ChaosConfig, workers int) *injector {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.StragglerOps <= 0 {
		cfg.StragglerOps = 50000
	}
	inj := &injector{
		cfg:       cfg,
		seed:      chaosMix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15),
		ctx:       make([]chaosTaskCtx, workers),
		stageRuns: make(map[string]int),
	}
	if cfg.Rate > 0 {
		if cfg.Rate >= 1 {
			inj.threshold = ^uint64(0)
		} else {
			inj.threshold = uint64(cfg.Rate * float64(1<<63) * 2)
		}
	}
	return inj
}

// beginStage opens a per-stage decision scope. Called by RunStage on the
// driver before any task runs.
func (inj *injector) beginStage(name string, seq int) *stageChaos {
	occ := inj.stageRuns[name]
	inj.stageRuns[name]++
	return &stageChaos{inj: inj, name: name, seq: seq, occ: occ}
}

// roll decides whether kind fires for (part, attempt) in this stage. Rate
// decisions hash (seed, stage sequence, part, attempt, kind) — not the
// worker, whose identity depends on placement policy — and never fire on the
// final attempt, keeping recovery bounded. Scheduled events fire regardless
// of rate at exactly their pinned point.
//
//rasql:noalloc
func (sc *stageChaos) roll(part, attempt int, kind FaultKind) bool {
	inj := sc.inj
	if inj.threshold != 0 && attempt < inj.cfg.MaxAttempts-1 {
		x := inj.seed
		x ^= uint64(sc.seq)*0x9e3779b97f4a7c15 + uint64(part)*0xbf58476d1ce4e5b9
		x += uint64(attempt)*0x94d049bb133111eb + uint64(kind)
		if chaosMix(x) < inj.threshold {
			return true
		}
	}
	for _, ev := range inj.cfg.Schedule {
		if (ev.Stage == "" || ev.Stage == sc.name) &&
			(ev.Occurrence < 0 || ev.Occurrence == sc.occ) &&
			ev.Part == part && ev.Attempt == attempt && ev.Kind == kind {
			return true
		}
	}
	return false
}

// taskCtx returns the chaos context of the task currently running on worker
// w, or nil when w is the driver (-1) or no chaos task is active there.
//
//rasql:noalloc
func (inj *injector) taskCtx(w int) *chaosTaskCtx {
	if w < 0 || w >= len(inj.ctx) || inj.ctx[w].sc == nil {
		return nil
	}
	return &inj.ctx[w]
}

// fetchPoint may kill the running task at the shuffle-fetch boundary. Fires
// before any bucket is consumed, so the replay re-fetches pristine buckets.
//
//rasql:noalloc
func (inj *injector) fetchPoint(onWorker int) {
	if ctx := inj.taskCtx(onWorker); ctx != nil && ctx.sc.roll(ctx.part, ctx.attempt, FaultFetch) {
		panic(faultPanic{kind: FaultFetch})
	}
}

// replayRows counts rows the running task re-reads on a retry attempt —
// wasted work a fault-free run would not have paid.
func (inj *injector) replayRows(m *Metrics, onWorker, n int) {
	if ctx := inj.taskCtx(onWorker); ctx != nil && ctx.attempt > 0 {
		m.RowsReplayed.Add(int64(n))
	}
}

// invalidateWorker drops the worker's broadcast cache blocks; they rebuild
// lazily from the retained wire on next access.
func (inj *injector) invalidateWorker(w int) {
	for _, b := range inj.broadcasts {
		b.invalidate(w)
	}
}

// faultPanic is the sentinel the injector throws. The retry loop recovers
// exactly this type and replays the attempt; any other panic is a real bug
// and propagates.
type faultPanic struct{ kind FaultKind }

// ChaosEnabled reports whether the query runs with an active injector.
// Engines use it to decide whether stage tasks need checkpoints/Rollbacks.
//
//rasql:noalloc
func (q *QueryContext) ChaosEnabled() bool { return q.chaos != nil }

// ChaosPostMerge is the fault point engines place between merging a batch
// into cached state and deriving output from the merge. A fault here leaves
// the partition dirty, so recovery must roll the state back to the stage
// checkpoint before replaying — the path that proves the Section 6.1
// "all relation is its own checkpoint" argument. No-op (one nil check) when
// chaos is off or the caller is not a chaos-managed task — the disabled-
// injector fast path the noalloc annotation pins.
//
//rasql:noalloc
func (q *QueryContext) ChaosPostMerge(worker int) {
	if q.chaos == nil {
		return
	}
	if ctx := q.chaos.taskCtx(worker); ctx != nil && ctx.sc.roll(ctx.part, ctx.attempt, FaultPostMerge) {
		panic(faultPanic{kind: FaultPostMerge})
	}
}

// runTaskChaos executes one task under the injector: attempts run until one
// survives every fault point. A killed attempt rolls the task's partition
// back (Task.Rollback, when set) and is counted as a retry; the injector's
// attempt bound guarantees termination.
func (q *QueryContext) runTaskChaos(sc *stageChaos, t Task, w int, spans bool, name string) {
	for attempt := 0; ; attempt++ {
		if q.runTaskAttempt(sc, t, w, attempt, spans, name) {
			return
		}
		q.Metrics.TaskRetries.Add(1)
		if t.Rollback != nil {
			t.Rollback()
		}
	}
}

// runTaskAttempt runs one attempt, reporting whether it completed. Fault
// panics are recovered here; anything else propagates.
func (q *QueryContext) runTaskAttempt(sc *stageChaos, t Task, w, attempt int, spans bool, name string) (ok bool) {
	inj := sc.inj
	inj.ctx[w] = chaosTaskCtx{sc: sc, part: t.Part, attempt: attempt}
	defer func() {
		inj.ctx[w] = chaosTaskCtx{}
		r := recover()
		if r == nil {
			return
		}
		fp, isFault := r.(faultPanic)
		if !isFault {
			panic(r)
		}
		ok = false
		if q.Tracer.SpansEnabled() {
			q.Tracer.Instant("fault "+fp.kind.String(), trace.TidWorker(w),
				trace.Arg{Key: "part", Val: int64(t.Part)},
				trace.Arg{Key: "attempt", Val: int64(attempt)})
		}
	}()
	if spans {
		s := q.Tracer.BeginArgs(name, trace.TidWorker(w),
			trace.Arg{Key: "part", Val: int64(t.Part)},
			trace.Arg{Key: "attempt", Val: int64(attempt)})
		defer s.End()
	}
	if sc.roll(t.Part, attempt, FaultStraggler) {
		burn(inj.cfg.StragglerOps)
	}
	if sc.roll(t.Part, attempt, FaultWorkerLoss) {
		inj.invalidateWorker(w)
		panic(faultPanic{kind: FaultWorkerLoss})
	}
	if sc.roll(t.Part, attempt, FaultTaskStart) {
		panic(faultPanic{kind: FaultTaskStart})
	}
	t.Run(w)
	return true
}

// chaosMix is the splitmix64 finalizer (same construction as the row-key
// hash finalizer in internal/types): a cheap bijection that spreads the
// structured (seq, part, attempt, kind) tuples uniformly over uint64 so the
// rate threshold compares against an unbiased value.
func chaosMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
