package cluster

import (
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// PartitionedRelation is a relation split into hash partitions, each cached
// on (owned by) a specific worker. It is the simulator's analog of a
// partitioned, cached RDD.
type PartitionedRelation struct {
	Schema types.Schema
	// Key holds the column indices the partitioning hash is computed
	// over; nil means round-robin (no key partitioning guarantee).
	Key []int
	// Parts holds the rows of each partition.
	Parts [][]types.Row
	// Owner holds the worker caching each partition.
	Owner []int
}

// NumPartitions returns the partition count.
func (p *PartitionedRelation) NumPartitions() int { return len(p.Parts) }

// Len returns the total row count across partitions.
func (p *PartitionedRelation) Len() int {
	n := 0
	for _, part := range p.Parts {
		n += len(part)
	}
	return n
}

// PartitionFor returns the partition index for a row under this relation's
// key and partition count.
func (p *PartitionedRelation) PartitionFor(row types.Row) int {
	return int(types.HashRowKey(row, p.Key) % uint64(len(p.Parts)))
}

// Partition hash-partitions rel on the given key columns into the cluster's
// default partition count, caching partition i on its default owner. A nil
// key spreads rows round-robin.
func (c *Cluster) Partition(rel *relation.Relation, key []int) *PartitionedRelation {
	return c.PartitionN(rel, key, c.cfg.Partitions)
}

// PartitionN is Partition with an explicit partition count.
func (c *Cluster) PartitionN(rel *relation.Relation, key []int, parts int) *PartitionedRelation {
	p := &PartitionedRelation{
		Schema: rel.Schema,
		Key:    append([]int(nil), key...),
		Parts:  make([][]types.Row, parts),
		Owner:  make([]int, parts),
	}
	for i := range p.Owner {
		p.Owner[i] = c.DefaultOwner(i)
	}
	for i, row := range rel.Rows {
		var t int
		if key == nil {
			t = i % parts
		} else {
			t = int(types.HashRowKey(row, key) % uint64(parts))
		}
		p.Parts[t] = append(p.Parts[t], row)
	}
	return p
}

// Empty creates an empty partitioned relation with the given schema and key
// using the cluster's default partition count and ownership.
func (c *Cluster) Empty(schema types.Schema, key []int) *PartitionedRelation {
	return c.EmptyN(schema, key, c.cfg.Partitions)
}

// EmptyN is Empty with an explicit partition count.
func (c *Cluster) EmptyN(schema types.Schema, key []int, parts int) *PartitionedRelation {
	p := &PartitionedRelation{
		Schema: schema,
		Key:    append([]int(nil), key...),
		Parts:  make([][]types.Row, parts),
		Owner:  make([]int, parts),
	}
	for i := range p.Owner {
		p.Owner[i] = c.DefaultOwner(i)
	}
	return p
}
