package pregel

import (
	"testing"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/gap"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

func testCluster() *cluster.QueryContext {
	return cluster.New(cluster.Config{Workers: 4, Partitions: 4, StageOverheadOps: -1}).NewQuery(nil)
}

func weighted(pairs ...[3]float64) *relation.Relation {
	rel := relation.New("edge", gen.EdgeSchema())
	for _, p := range pairs {
		rel.Append(types.Row{types.Int(int64(p[0])), types.Int(int64(p[1])), types.Float(p[2])})
	}
	return rel
}

func TestSSSPBothProfiles(t *testing.T) {
	edges := weighted(
		[3]float64{1, 2, 1}, [3]float64{1, 3, 4}, [3]float64{2, 3, 2},
		[3]float64{3, 4, 1}, [3]float64{4, 2, 5}, [3]float64{2, 5, 10}, [3]float64{5, 1, 1})
	want := gap.SSSPRelation(map[int64]float64{1: 0, 2: 1, 3: 3, 4: 4, 5: 11})
	for _, prof := range []Profile{ProfileGiraph, ProfileGraphX} {
		got, steps, err := Run(testCluster(), edges, SSSP, Options{Profile: prof, Source: 1})
		if err != nil {
			t.Fatalf("%v: %v", prof, err)
		}
		if steps == 0 {
			t.Errorf("%v: no supersteps ran", prof)
		}
		if !got.EqualAsSet(want) {
			t.Errorf("%v: got %v want %v", prof, got.Sort(), want.Sort())
		}
	}
}

func TestReach(t *testing.T) {
	edges := weighted([3]float64{1, 2, 0}, [3]float64{2, 3, 0}, [3]float64{4, 5, 0})
	got, _, err := Run(testCluster(), edges, Reach, Options{Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := gap.ReachRelation([]int64{1, 2, 3})
	if !got.EqualAsSet(want) {
		t.Errorf("got %v want %v", got.Sort(), want.Sort())
	}
}

func TestCCMatchesSerial(t *testing.T) {
	g := gen.Symmetrized(gen.Unweighted(gen.RMATDefault(256, gen.Rng(42))))
	want := gap.CCRelation(gap.NewCSR(g).CC())
	for _, prof := range []Profile{ProfileGiraph, ProfileGraphX} {
		got, _, err := Run(testCluster(), g, CC, Options{Profile: prof})
		if err != nil {
			t.Fatalf("%v: %v", prof, err)
		}
		if !got.EqualAsSet(want) {
			t.Errorf("%v: CC disagrees with serial label propagation", prof)
		}
	}
}

func TestGraphXRunsMoreStages(t *testing.T) {
	edges := gen.Symmetrized(gen.Unweighted(gen.RMATDefault(128, gen.Rng(1))))
	cGiraph, cGraphX := testCluster(), testCluster()
	if _, _, err := Run(cGiraph, edges, CC, Options{Profile: ProfileGiraph}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(cGraphX, edges, CC, Options{Profile: ProfileGraphX}); err != nil {
		t.Fatal(err)
	}
	sg := cGiraph.Metrics.Snapshot().StagesRun
	sx := cGraphX.Metrics.Snapshot().StagesRun
	if sx < 2*sg {
		t.Errorf("GraphX should run ~4x the stages per superstep: giraph=%d graphx=%d", sg, sx)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	edges := weighted([3]float64{1, 2, 1}, [3]float64{2, 1, 1})
	// CC on a two-node cycle converges quickly, so force failure with a
	// one-superstep cap on a longer chain.
	long := weighted([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{3, 4, 1})
	if _, _, err := Run(testCluster(), long, SSSP, Options{Source: 1, MaxSupersteps: 1}); err == nil {
		t.Error("superstep cap should error")
	}
	if _, _, err := Run(testCluster(), edges, SSSP, Options{Source: 1}); err != nil {
		t.Errorf("small run should converge: %v", err)
	}
}

func TestMaxPropMatchesDeliverySemantics(t *testing.T) {
	// Sub-part → part edges; leaves carry days. The max must propagate to
	// every ancestor: part 0 waits for max(leaf days) in its subtree.
	edges := weighted(
		[3]float64{2, 1, 0}, [3]float64{3, 1, 0}, // parts 2,3 feed part 1
		[3]float64{1, 0, 0}, [3]float64{4, 0, 0}) // 1,4 feed 0
	init := map[int64]float64{2: 5, 3: 9, 4: 2}
	got, _, err := Run(testCluster(), edges, MaxProp, Options{InitValues: init})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{2: 5, 3: 9, 4: 2, 1: 9, 0: 9}
	checkVals(t, got, want)
}

func TestSumUpMatchesManagementSemantics(t *testing.T) {
	// report edges Emp → Mgr: 2,3 report to 1; 4 reports to 2. Everyone
	// starts with their own count of 1; sums flow upward.
	edges := weighted([3]float64{2, 1, 0}, [3]float64{3, 1, 0}, [3]float64{4, 2, 0})
	init := map[int64]float64{1: 1, 2: 1, 3: 1, 4: 1}
	got, _, err := Run(testCluster(), edges, SumUp, Options{InitValues: init})
	if err != nil {
		t.Fatal(err)
	}
	// 4 → 1; 2 → 1+1(from 4)=2; 3 → 1; 1 → 1+2+1 = 4 (includes own 1).
	want := map[int64]float64{4: 1, 3: 1, 2: 2, 1: 4}
	checkVals(t, got, want)
}

func TestSumUpFactorMLM(t *testing.T) {
	// Sponsorship chain 3 → 2 → 1 with sales bonuses halved per level.
	edges := weighted([3]float64{3, 2, 0}, [3]float64{2, 1, 0})
	init := map[int64]float64{1: 10, 2: 20, 3: 30}
	got, _, err := Run(testCluster(), edges, SumUp, Options{Factor: 0.5})
	if err == nil && got.Len() == 0 {
		t.Log("no init values means empty result")
	}
	got, _, err = Run(testCluster(), edges, SumUp, Options{Factor: 0.5, InitValues: init})
	if err != nil {
		t.Fatal(err)
	}
	// bonus(2) = 20 + 0.5*30 = 35; bonus(1) = 10 + 0.5*35 = 27.5.
	want := map[int64]float64{3: 30, 2: 35, 1: 27.5}
	checkVals(t, got, want)
}

func checkVals(t *testing.T, got *relation.Relation, want map[int64]float64) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("got %d rows, want %d: %v", got.Len(), len(want), got.Sort())
	}
	for _, r := range got.Rows {
		if w, ok := want[r[0].AsInt()]; !ok || r[1].AsFloat() != w {
			t.Errorf("node %d = %v, want %v", r[0].AsInt(), r[1], w)
		}
	}
}
