// Package pregel is a vertex-centric BSP graph engine in the style of
// Google's Pregel, running on the same simulated cluster as the RaSQL
// fixpoint operator. It provides the comparator systems of the paper's
// Section 8 experiments:
//
//   - ProfileGiraph models Apache Giraph: message combiners and a single
//     synchronized stage per superstep (the paper credits Giraph's relative
//     speed to this tight execution).
//   - ProfileGraphX models GraphX's vertex-centric layer on raw RDDs: each
//     superstep splits into four ShuffleMap stages with materialized
//     intermediates and loses operator combination — the inefficiencies the
//     paper identifies when explaining why GraphX trails RaSQL by 4-8x.
//
// The REACH, CC and SSSP programs are the min-propagation algorithms these
// systems ship as library code.
package pregel

import (
	"fmt"
	"math"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// Profile selects the comparator system being modeled.
type Profile uint8

// The profiles.
const (
	ProfileGiraph Profile = iota
	ProfileGraphX
)

// String names the profile.
func (p Profile) String() string {
	if p == ProfileGraphX {
		return "graphx"
	}
	return "giraph"
}

// Algorithm selects the vertex program.
type Algorithm uint8

// The built-in vertex programs.
const (
	// Reach marks vertices reachable from the source (BFS).
	Reach Algorithm = iota
	// CC propagates minimum component labels.
	CC
	// SSSP relaxes shortest-path distances from the source.
	SSSP
	// MaxProp propagates maximum values along edges (the vertex-centric
	// form of the BOM Delivery query: leaves carry days, edges point
	// sub-part → part).
	MaxProp
	// SumUp accumulates sums towards parents (the vertex-centric
	// Management/MLM pattern: each vertex adds incoming contributions
	// and forwards them, scaled by Options.Factor, along its out-edges).
	SumUp
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case CC:
		return "cc"
	case SSSP:
		return "sssp"
	case MaxProp:
		return "maxprop"
	case SumUp:
		return "sumup"
	default:
		return "reach"
	}
}

// Options configures a run.
type Options struct {
	Profile Profile
	// Source is the source vertex for Reach and SSSP.
	Source int64
	// MaxSupersteps bounds the loop (default 100000).
	MaxSupersteps int
	// Factor scales forwarded contributions for SumUp (default 1; the
	// MLM bonus query uses 0.5).
	Factor float64
	// InitValues seeds per-vertex initial values for MaxProp and SumUp
	// (e.g. leaf delivery days, per-member sales). Vertices without an
	// entry start at the mode's identity.
	InitValues map[int64]float64
}

func (o Options) maxSteps() int {
	if o.MaxSupersteps <= 0 {
		return 100000
	}
	return o.MaxSupersteps
}

// graph is the partitioned CSR representation.
type graph struct {
	parts int
	// vids[p] lists the vertex ids of partition p.
	vids [][]int64
	// index[p] maps vid -> local index.
	index []map[int64]int
	// adj[p][local] lists (dst, weight) out-edges.
	adj [][][]edge
}

type edge struct {
	dst int64
	w   float64
}

func partOf(v int64, parts int) int {
	h := uint64(v) * 0x9e3779b97f4a7c15
	return int(h % uint64(parts))
}

func buildGraph(c *cluster.QueryContext, edges *relation.Relation) *graph {
	parts := c.Partitions()
	g := &graph{parts: parts,
		vids:  make([][]int64, parts),
		index: make([]map[int64]int, parts),
		adj:   make([][][]edge, parts),
	}
	for p := 0; p < parts; p++ {
		g.index[p] = map[int64]int{}
	}
	weighted := edges.Schema.Len() >= 3
	add := func(v int64) int {
		p := partOf(v, g.parts)
		if i, ok := g.index[p][v]; ok {
			return i
		}
		i := len(g.vids[p])
		g.index[p][v] = i
		g.vids[p] = append(g.vids[p], v)
		g.adj[p] = append(g.adj[p], nil)
		return i
	}
	for _, r := range edges.Rows {
		src, dst := r[0].AsInt(), r[1].AsInt()
		w := 1.0
		if weighted {
			w = r[2].AsFloat()
		}
		si := add(src)
		add(dst)
		p := partOf(src, g.parts)
		g.adj[p][si] = append(g.adj[p][si], edge{dst: dst, w: w})
	}
	return g
}

// Run executes the algorithm and returns the result relation —
// (Dst) rows for Reach, (Src, CmpId) for CC, (Dst, Cost) for SSSP — plus
// the superstep count.
func Run(c *cluster.QueryContext, edges *relation.Relation, alg Algorithm, opt Options) (*relation.Relation, int, error) {
	g := buildGraph(c, edges)
	m := modeOf(alg)
	if opt.Factor == 0 {
		opt.Factor = 1
	}

	// Vertex values, per-superstep frontier, and the payload each active
	// vertex forwards (for SumUp the payload is the new contribution, not
	// the accumulated value).
	vals := make([][]float64, g.parts)
	pend := make([][]float64, g.parts)
	active := make([][]bool, g.parts)
	for p := 0; p < g.parts; p++ {
		vals[p] = make([]float64, len(g.vids[p]))
		pend[p] = make([]float64, len(g.vids[p]))
		active[p] = make([]bool, len(g.vids[p]))
		for i, v := range g.vids[p] {
			switch alg {
			case CC:
				vals[p][i] = float64(v)
				pend[p][i] = vals[p][i]
				active[p][i] = true
			case MaxProp, SumUp:
				init, ok := opt.InitValues[v]
				if !ok {
					vals[p][i] = m.identity
					continue
				}
				vals[p][i] = init
				pend[p][i] = init
				active[p][i] = true
			default:
				vals[p][i] = math.Inf(1)
				if v == opt.Source {
					vals[p][i] = 0
					active[p][i] = true
				}
			}
		}
	}

	// edgeVal computes the message sent along an out-edge from the
	// forwarded payload.
	edgeVal := func(payload float64, e edge) float64 {
		switch alg {
		case SSSP:
			return payload + e.w
		case SumUp:
			return payload * opt.Factor
		default:
			return payload
		}
	}

	steps := 0
	anyActive := func() bool {
		for p := range active {
			for _, a := range active[p] {
				if a {
					return true
				}
			}
		}
		return false
	}

	for anyActive() {
		steps++
		if steps > opt.maxSteps() {
			return nil, steps, fmt.Errorf("pregel: no convergence after %d supersteps", steps)
		}
		var out [][]types.Row
		if opt.Profile == ProfileGraphX {
			out = superstepGraphX(c, g, pend, active, edgeVal, m)
		} else {
			out = superstepGiraph(c, g, pend, active, edgeVal, m)
		}
		// Shuffle messages to vertex partitions and apply them. out is
		// indexed by producer partition; rows route by destination vertex.
		sh := c.NewShuffle(g.parts)
		for producer, rows := range out {
			buckets := make([][]types.Row, g.parts)
			for _, r := range rows {
				t := partOf(r[0].AsInt(), g.parts)
				buckets[t] = append(buckets[t], r)
			}
			//rasql:allow workeraffinity -- driver loop writes each producer shard sequentially between stages; no task is running, so the one-writer-per-shard invariant holds
			sh.Add(buckets, c.DefaultOwner(producer))
		}
		applyTasks := make([]cluster.Task, g.parts)
		for i := range applyTasks {
			p := i
			applyTasks[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
				msgs := sh.FetchTarget(p, w)
				for li := range active[p] {
					active[p][li] = false
				}
				// Combine incoming messages per local vertex first.
				inbox := map[int]float64{}
				for _, msg := range msgs {
					li, ok := g.index[p][msg[0].AsInt()]
					if !ok {
						continue
					}
					v := msg[1].AsFloat()
					if cur, seen := inbox[li]; seen {
						inbox[li] = m.combine(cur, v)
					} else {
						inbox[li] = v
					}
				}
				for li, v := range inbox {
					if m.additive {
						if v == 0 {
							continue
						}
						vals[p][li] += v
						pend[p][li] = v
						active[p][li] = true
						continue
					}
					if m.improves(v, vals[p][li]) {
						vals[p][li] = v
						pend[p][li] = v
						active[p][li] = true
					}
				}
			}}
		}
		c.RunStage("pregel.apply", applyTasks)
	}

	return result(g, vals, alg), steps, nil
}

// mode captures the message algebra of an algorithm.
type mode struct {
	combine  func(a, b float64) float64
	improves func(nu, cur float64) bool
	additive bool
	identity float64
}

func modeOf(alg Algorithm) mode {
	switch alg {
	case MaxProp:
		return mode{
			combine:  math.Max,
			improves: func(nu, cur float64) bool { return nu > cur },
			identity: math.Inf(-1),
		}
	case SumUp:
		return mode{
			combine:  func(a, b float64) float64 { return a + b },
			additive: true,
		}
	default:
		return mode{
			combine:  math.Min,
			improves: func(nu, cur float64) bool { return nu < cur },
			identity: math.Inf(1),
		}
	}
}

// superstepGiraph produces messages in one stage with a per-partition
// combiner: one min-message per destination vertex.
func superstepGiraph(c *cluster.QueryContext, g *graph, pend [][]float64, active [][]bool, edgeVal func(float64, edge) float64, m mode) [][]types.Row {
	out := make([][]types.Row, g.parts)
	tasks := make([]cluster.Task, g.parts)
	for i := range tasks {
		p := i
		tasks[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
			// Each sendMessage boxes a message object (Giraph's Writable
			// per call) before the combiner reduces them — the combiner
			// cuts shuffle volume, not per-edge object creation. All of
			// it happens inside this single superstep stage; GraphX does
			// the same work split across four materialized stages.
			var msgs []types.Row
			for li, isActive := range active[p] {
				if !isActive {
					continue
				}
				payload := pend[p][li]
				for _, e := range g.adj[p][li] {
					msgs = append(msgs, types.Row{types.Int(e.dst), types.Float(edgeVal(payload, e))})
				}
			}
			combined := map[int64]int{}
			rows := make([]types.Row, 0, len(msgs)/2+1)
			for _, msg := range msgs {
				dst := msg[0].AsInt()
				if i, ok := combined[dst]; ok {
					rows[i][1] = types.Float(m.combine(rows[i][1].AsFloat(), msg[1].AsFloat()))
					continue
				}
				combined[dst] = len(rows)
				rows = append(rows, msg)
			}
			out[p] = rows
		}}
	}
	c.RunStage("giraph.superstep", tasks)
	return out
}

// superstepGraphX reproduces GraphX's four-stage superstep: (1) materialize
// the active vertex view, (2) join vertex values into edge triplets,
// (3) run sendMsg over the triplets, (4) reduce messages — each a separate
// stage with materialized intermediates and per-task scheduling cost, and
// no cross-operator fusion.
func superstepGraphX(c *cluster.QueryContext, g *graph, vals [][]float64, active [][]bool, edgeVal func(float64, edge) float64, m mode) [][]types.Row {
	parts := g.parts
	// Stage 1: materialize the active vertex view.
	activeView := make([][][2]float64, parts) // (localIdx, value) pairs
	stage1 := make([]cluster.Task, parts)
	for i := range stage1 {
		p := i
		stage1[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
			var view [][2]float64
			for li, isActive := range active[p] {
				if isActive {
					view = append(view, [2]float64{float64(li), vals[p][li]})
				}
			}
			activeView[p] = view
		}}
	}
	c.RunStage("graphx.vertexview", stage1)

	// Stage 2: build edge triplets for active sources (materialized).
	type triplet struct {
		dst int64
		val float64
		w   float64
	}
	triplets := make([][]triplet, parts)
	stage2 := make([]cluster.Task, parts)
	for i := range stage2 {
		p := i
		stage2[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
			var ts []triplet
			for _, lv := range activeView[p] {
				li := int(lv[0])
				for _, e := range g.adj[p][li] {
					ts = append(ts, triplet{dst: e.dst, val: lv[1], w: e.w})
				}
			}
			triplets[p] = ts
		}}
	}
	c.RunStage("graphx.triplets", stage2)

	// Stage 3: sendMsg over triplets (materialized message list, no
	// combiner yet). Being a separate ShuffleMap stage, its output RDD is
	// materialized through the wire format before the reduce stage reads
	// it — the per-stage serialization cost whole-stage fusion avoids.
	msgs := make([][]types.Row, parts)
	stage3 := make([]cluster.Task, parts)
	for i := range stage3 {
		p := i
		stage3[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
			rows := make([]types.Row, 0, len(triplets[p]))
			for _, t := range triplets[p] {
				rows = append(rows, types.Row{types.Int(t.dst), types.Float(edgeVal(t.val, edge{dst: t.dst, w: t.w}))})
			}
			decoded, err := types.DecodeRows(types.EncodeRows(rows))
			if err != nil {
				panic("pregel: stage materialization corruption: " + err.Error())
			}
			msgs[p] = decoded
		}}
	}
	c.RunStage("graphx.sendmsg", stage3)

	// Stage 4: local message reduce before the shuffle.
	out := make([][]types.Row, parts)
	stage4 := make([]cluster.Task, parts)
	for i := range stage4 {
		p := i
		stage4[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
			combined := map[int64]float64{}
			for _, msg := range msgs[p] {
				dst, v := msg[0].AsInt(), msg[1].AsFloat()
				if cur, ok := combined[dst]; ok {
					combined[dst] = m.combine(cur, v)
				} else {
					combined[dst] = v
				}
			}
			rows := make([]types.Row, 0, len(combined))
			for dst, msg := range combined {
				rows = append(rows, types.Row{types.Int(dst), types.Float(msg)})
			}
			out[p] = rows
		}}
	}
	c.RunStage("graphx.reduce", stage4)
	return out
}

func result(g *graph, vals [][]float64, alg Algorithm) *relation.Relation {
	var rel *relation.Relation
	switch alg {
	case Reach:
		rel = relation.New("reach", types.NewSchema(types.Col("Dst", types.KindInt)))
	case CC:
		rel = relation.New("cc", types.NewSchema(
			types.Col("Src", types.KindInt), types.Col("CmpId", types.KindInt)))
	case MaxProp, SumUp:
		rel = relation.New(alg.String(), types.NewSchema(
			types.Col("Node", types.KindInt), types.Col("Value", types.KindFloat)))
	default:
		rel = relation.New("path", types.NewSchema(
			types.Col("Dst", types.KindInt), types.Col("Cost", types.KindFloat)))
	}
	for p := 0; p < g.parts; p++ {
		for li, v := range g.vids[p] {
			val := vals[p][li]
			switch alg {
			case Reach:
				if !math.IsInf(val, 1) {
					rel.Append(types.Row{types.Int(v)})
				}
			case CC:
				rel.Append(types.Row{types.Int(v), types.Int(int64(val))})
			case MaxProp, SumUp:
				if !math.IsInf(val, -1) {
					rel.Append(types.Row{types.Int(v), types.Float(val)})
				}
			default:
				if !math.IsInf(val, 1) {
					rel.Append(types.Row{types.Int(v), types.Float(val)})
				}
			}
		}
	}
	return rel
}
