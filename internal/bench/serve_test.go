package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	rasql "github.com/rasql/rasql-go"
)

func TestServeConcurrentClients(t *testing.T) {
	r := quickRunner()
	var live *rasql.MetricsRegistry
	tbl, res, err := r.Serve("fig8", 2, 300*time.Millisecond, func(reg *rasql.MetricsRegistry) { live = reg })
	if err != nil {
		t.Fatal(err)
	}
	if live == nil || live != res.Registry {
		t.Error("started hook did not receive the serving engine's registry")
	}
	if res.Clients != 2 || res.Queries == 0 || res.QPS <= 0 {
		t.Errorf("serve result = %+v, want positive throughput from 2 clients", res)
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	if !strings.Contains(tbl.String(), "qps") {
		t.Errorf("serve table missing qps column:\n%s", tbl)
	}
	// The serving engine's exposition must survive the strict parser.
	var buf bytes.Buffer
	if err := res.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rasql.ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("serve exposition invalid: %v\n%s", err, buf.String())
	}
	// Counters attributed to the serve run feed TakeTotals like any other
	// cluster-backed measurement.
	if m := r.TakeTotals(); m.ShuffleRecords == 0 {
		t.Error("serve run attributed no shuffle records to the totals accumulator")
	}
}

func TestServeRejectsBadArguments(t *testing.T) {
	r := quickRunner()
	if _, _, err := r.Serve("table3", 2, time.Second, nil); err == nil {
		t.Error("experiment without a serving workload accepted")
	}
	if _, _, err := r.Serve("fig5", 0, time.Second, nil); err == nil {
		t.Error("zero clients accepted")
	}
	if _, _, err := r.Serve("fig5", 2, 0, nil); err == nil {
		t.Error("zero duration accepted")
	}
}
