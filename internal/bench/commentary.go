package bench

// Commentary maps experiment ids to the paper-vs-measured discussion that
// EXPERIMENTS.md embeds under each regenerated table. Keeping the text next
// to the harness keeps the claims and the code that tests them in one
// place.
var Commentary = map[string]string{
	"fig1": `**Paper:** RaSQL-SSSP 14s / RaSQL-CC 10s vs Stratified-SSSP 360s*
(cut, non-terminating on cycles) / Stratified-CC 1200s — the unstratified
queries run orders of magnitude faster, and endo-min SSSP terminates where
the stratified version cannot.
**Measured:** the same shape. The aggregate-in-recursion versions finish in
tens of milliseconds at this scale, the stratified CC is one to two orders
of magnitude slower (its recursion enumerates every propagated label), and
the stratified SSSP hits the non-termination guard and is reported cut
after the meaningful iterations, exactly as the paper's footnote describes.
The gap widens with graph size, which is why the stratified arm runs on a
smaller graph than the other figures.`,

	"fig5": `**Paper:** stage combination gains 3x-5x on REACH and 1.5x-2x
on CC/SSSP.
**Measured:** the same ordering — REACH benefits most (roughly 2x-3.5x),
CC/SSSP roughly 1.2x-2.5x. Combination requires the partition-aware
scheduler, so the uncombined arm also runs under the default
locality-oblivious policy (as on stock Spark); the win comes from half the
stages per iteration plus the inter-iteration locality the paper's
Section 7.1 describes. REACH gains most because its per-iteration compute
is smallest, leaving scheduling and delta-handoff costs dominant.`,

	"fig6": `**Paper:** decomposed execution beats the shuffled plan by
~1.5x-2x, and broadcast compression roughly halves total time on the large
tree graphs (N-40M/N-80M).
**Measured:** the same two steps on every dataset: decomposed+compressed <
decompose-only < no-optimizations. Decomposition removes the per-iteration
shuffle entirely (TC's head carries its partition key), and compression
shrinks the broadcast payload versus shipping the pre-built hashed
relation.`,

	"fig7": `**Paper:** whole-stage code generation gains 10-20% on CC/SSSP
and less on REACH; shuffle-dominated queries see less benefit.
**Measured:** fused kernels beat Volcano iterators consistently; our
magnitudes run somewhat larger than the paper's on REACH at small scale,
because per-row iterator dispatch is proportionally heavier when the data
is scaled down and shuffling is cheaper in-process. The direction and
bounded size of the effect (well under the structural optimizations of
Figures 5/6) match the paper's observation that codegen is the smallest of
the three optimizations.`,

	"fig8": `**Paper:** RaSQL is fastest (REACH) or within 10% (CC, SSSP) of
the best system; Giraph is the closest competitor; GraphX trails by 4x-8x;
Myria is competitive on small graphs but scales poorly.
**Measured:** the Spark-based orderings reproduce: RaSQL beats BigDatalog
(the engine minus stage combination, fused kernels and compressed
broadcast) and both SQL-loop baselines; GraphX trails Giraph by the
stage-structure gap; Myria's shuffle-volume penalty grows with size. One
honest deviation: our Giraph substitute is an idealized native
implementation (dense float arrays, no JVM), and the row-model engine
trails it by a small constant factor (~2-3x on CC) rather than matching it.
The paper's parity depended on JVM-level effects on both sides that a
one-process simulation cannot reproduce; the skew-balance mechanism that
lets RaSQL catch up on real graphs is visible in Figure 9.`,

	"fig9": `**Paper:** on real-world graphs RaSQL ranks 1st on 9 of 12
tests and 2nd on the other 3, roughly 2x over Giraph on REACH/SSSP thanks
to better handling of skew.
**Measured (on skewed RMAT analogs preserving each graph's |E|/|V|):** the
skew mechanism reproduces: the vertex-centric engines suffer larger
max-per-worker times (hub vertices pin whole adjacency lists to one
worker), while RaSQL's tuple-level partitioning stays balanced — visible as
a lower simulated-to-total-work ratio. Absolute rankings against the
idealized native Giraph carry the same constant-factor caveat as Figure 8.`,

	"fig10": `**Paper:** RaSQL is at least 2x faster than GraphX (4x-6x at
300M nodes); Spark-SQL-SN beats Spark-SQL-Naive by ~2x but still trails
RaSQL by 4x+.
**Measured:** the full ordering reproduces: RaSQL < GraphX < SQL-SN <
SQL-Naive on all three queries. The SQL loops lose exactly where the paper
says they do — every iteration is an independent job that rebuilds join
state, re-broadcasts, and (for Naive) re-joins and re-aggregates the whole
accumulated relation.`,

	"fig11": `**Paper:** shuffle-hash join always beats sort-merge (the
build side is hashed once and cached across iterations); the gap grows with
size, up to ~4x on SSSP at 128M.
**Measured:** shuffle-hash wins on every cell, with the gap growing with
dataset size — the sort-merge side re-sorts the delta every iteration while
the hash side only probes a cached table (its build cost amortized across
iterations).`,

	"fig12": `**Paper:** scaling from 1-2 workers to 15 yields ~7x (TC) and
~10x (SG) speedups.
**Measured (simulated workers, sequential simulation):** near-linear
scaling for the large TC/SG workloads — the simulated clock records the max
per-worker stage time, so more workers shrink it until skew and
per-stage overhead dominate. Grid TC scales least (long diameter → many
tiny iterations), matching the paper's flattest curve.`,

	"table1": `The four real graphs are not redistributable; the harness
generates skewed RMAT analogs preserving each graph's |E|/|V| ratio at
1/512 of the original vertex counts. The table records paper sizes
alongside the generated ones. The CSV loader accepts the original edge
lists for anyone who has them.`,

	"table2": `Generators are verified in two ways: structural parameters
(Grid150 reproduces the paper's exact 22,801/45,300 vertex/edge counts;
Tree11 uses the paper's height-11, degree 2-6 parameters) and computed
TC/SG output sizes on scaled instances, cross-checked against brute-force
closures in the test suite. The paper's full-size outputs (10^8-10^9 rows)
exceed one machine and are quoted for reference.`,

	"table3": `**Paper:** the serial GAP/COST baselines win on small graphs
(low overhead, no coordination); the distributed systems win at
twitter scale (7x-100x on CC/SSSP for RaSQL).
**Measured:** the serial baselines win throughout at our scaled sizes —
expected, because 1/512-scale analogs sit in the paper's "small graph"
regime where even the paper's own numbers favour GAP/COST. The distributed
systems' advantage appears only beyond single-machine scale, which a
simulation on one machine definitionally cannot reach; we report the same
crossover logic through the Myria/size curves of Figure 8 instead.`,

	"ablations": `Design choices DESIGN.md calls out beyond the paper's own
figures, each toggled independently on SSSP: immutable state (no SetRDD)
pays full-copy unions; hybrid scheduling pays inter-iteration remote
fetches; rebuilding join state each iteration pays the Spark-SQL-loop
penalty in isolation; naive evaluation pays re-derivation of the whole
state every iteration (and the local engines calibrate the distributed
runtime's overhead).`,
}
