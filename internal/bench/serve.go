package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rasql "github.com/rasql/rasql-go"
)

// Serve runs the closed-loop concurrent-clients benchmark: N client
// goroutines drive one shared Engine with the experiment's representative
// recursive workload until the deadline, each issuing its next query the
// moment the previous one returns. Where the figure experiments measure one
// query at a time, this measures the engine as a server: throughput under
// concurrency plus the latency distribution the per-query stats recorder
// accumulates.
//
// The supported experiment ids are the RMAT workload figures: "fig5" (the
// stage-combination workload) and "fig8" (the systems-comparison workload).
// Both serve the REACH, CC and SSSP queries round-robin over the figure's
// smallest scaled RMAT graph; fig8 starts from its 1M-vertex sweep point,
// fig5 from its 16M one, so the two ids exercise a small- and a
// medium-working-set serving mix.
//
// started, when non-nil, receives the serving engine's metric registry
// before the clients start, so a scrape endpoint can expose the run live.
func (r *Runner) Serve(id string, clients int, duration time.Duration, started func(*rasql.MetricsRegistry)) (*Table, *ServeResult, error) {
	if clients <= 0 {
		return nil, nil, fmt.Errorf("bench: serve needs at least one client (got %d)", clients)
	}
	if duration <= 0 {
		return nil, nil, fmt.Errorf("bench: serve needs a positive duration (got %v)", duration)
	}
	var paperM int
	switch id {
	case "fig5":
		paperM = r.rmatSizes([]int{16, 32, 64, 128})[0]
	case "fig8":
		paperM = r.rmatSizes([]int{1, 2, 4, 8, 16, 32, 64, 128})[0]
	default:
		return nil, nil, fmt.Errorf("bench: experiment %q has no serving workload (use fig5 or fig8)", id)
	}
	// The weighted RMAT graph serves every query in the mix: REACH and CC
	// read only the Src/Dst columns, SSSP additionally the weights.
	edges := r.rmat(paperM)
	queries := []struct{ label, sql string }{
		{"REACH", qReach},
		{"CC", qCC},
		{"SSSP", qSSSP},
	}

	cfg := engineConfig("rasql", r.cfg.Workers, r.cfg.Partitions)
	cfg.Cluster.Chaos = r.cfg.Chaos
	eng := rasql.New(cfg)
	eng.MustRegister(edges)
	if started != nil {
		started(eng.Observability().Registry())
	}
	r.logf("serve %s: %d clients for %v over RMAT-%dM/%d (%d edges)",
		id, clients, duration, paperM, r.cfg.Scale, edges.Len())

	var (
		wg       sync.WaitGroup
		served   atomic.Uint64
		failed   atomic.Uint64
		firstErr atomic.Pointer[error]
	)
	deadline := time.Now().Add(duration)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Offsetting each client's rotation spreads the mix so all
			// three queries stay in flight at every point in time.
			for i := c; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				if _, err := eng.Query(q.sql); err != nil {
					failed.Add(1)
					e := fmt.Errorf("%s: %w", q.label, err)
					firstErr.CompareAndSwap(nil, &e)
				} else {
					served.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	r.totals = r.totals.Add(eng.Metrics())
	if ep := firstErr.Load(); ep != nil {
		return nil, nil, fmt.Errorf("bench: serve %s: %d queries failed, first: %w", id, failed.Load(), *ep)
	}

	lat := eng.Observability().QueryLatency()
	res := &ServeResult{
		Clients:  clients,
		Duration: elapsed,
		Queries:  served.Load(),
		QPS:      float64(served.Load()) / elapsed.Seconds(),
		P50:      time.Duration(lat.Quantile(0.50)),
		P95:      time.Duration(lat.Quantile(0.95)),
		P99:      time.Duration(lat.Quantile(0.99)),
		Registry: eng.Observability().Registry(),
	}
	t := &Table{
		ID:    "Serve " + id,
		Title: fmt.Sprintf("Concurrent clients (%d) on the %s workload", clients, id),
		Columns: []string{"workload", "clients", "duration", "queries", "qps",
			"p50", "p95", "p99"},
		Rows: [][]string{{
			fmt.Sprintf("%s RMAT-%dM/%d", id, paperM, r.cfg.Scale),
			fmt.Sprint(clients), elapsed.Round(time.Millisecond).String(),
			fmt.Sprint(res.Queries), fmt.Sprintf("%.1f", res.QPS),
			fmtDur(res.P50), fmtDur(res.P95), fmtDur(res.P99),
		}},
		Notes: []string{"closed loop: each client issues its next query as soon as the previous returns"},
	}
	return t, res, nil
}

// ServeResult aggregates one Serve run: closed-loop throughput plus the
// latency percentiles read back from the shared engine's per-query stats
// histogram. Registry is that engine's metric registry, live for Prometheus
// exposition after the run.
type ServeResult struct {
	Clients  int
	Duration time.Duration
	// Queries counts completed queries across all clients.
	Queries uint64
	// QPS is Queries divided by the measured wall time.
	QPS float64
	// P50/P95/P99 are wall-latency percentiles from the engine recorder's
	// rasql_query_latency_nanos histogram (≤12.5% bucket error). ServeHTTP
	// fills them from exact client-observed wall times instead.
	P50, P95, P99 time.Duration
	// HTTP-mode extras (ServeHTTP only): the median cold-path latency
	// (plan-cache miss, compile included), its sequential cache-hit
	// counterpart, and the server plan cache's hit/miss counters at the
	// end of the run.
	ColdP50, WarmP50               time.Duration
	PlanCacheHits, PlanCacheMisses int64
	// Registry is the serving engine's metric registry.
	Registry *rasql.MetricsRegistry
}
