package bench

import (
	"errors"
	"fmt"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// rmatSizes returns the paper's RMAT vertex counts (in millions) used by a
// figure; Quick mode trims the sweep.
func (r *Runner) rmatSizes(full []int) []int {
	if r.cfg.Quick && len(full) > 2 {
		return full[:2]
	}
	return full
}

// Figure1 reproduces the stratified-vs-RaSQL comparison: stratified CC
// completes orders of magnitude slower; stratified SSSP never terminates on
// cyclic graphs and is cut after the meaningful iterations.
func (r *Runner) Figure1() (*Table, error) {
	t := &Table{
		ID:      "Figure 1",
		Title:   "Performance of Stratified Query vs. RaSQL",
		Columns: []string{"query", "time", "status"},
	}
	// A graph small enough that the stratified CC actually completes —
	// the stratified recursions enumerate every propagated value, so
	// their state grows combinatorially with graph size.
	n := 512000 / r.cfg.Scale
	if n < 64 {
		n = 64
	}
	g := gen.RMATDefault(n, gen.Rng(r.cfg.Seed))
	sym := gen.Symmetrized(gen.Unweighted(g))
	cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}}

	// RaSQL endo-aggregate versions.
	var iters int64
	dur, err := r.timeSim(func() (cluster.Snapshot, error) {
		eng := rasql.New(cfg)
		eng.MustRegister(g.Clone())
		_, err := eng.Query(qSSSP)
		iters = eng.Metrics().Iterations
		return eng.Metrics(), err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"RaSQL-SSSP", fmtDur(dur), "fixpoint"})

	dur, err = r.runQuery(cfg, qCC, sym)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"RaSQL-CC", fmtDur(dur), "fixpoint"})

	// Stratified SSSP: cut after the meaningful iterations, as in the
	// paper's footnote (the recursion cycles forever on cyclic graphs).
	cut := cfg
	cut.Fixpoint.MaxIterations = int(iters) + 1
	// The un-aggregated path set grows by a factor of the average degree
	// per iteration; cap the state so the cut run stays within memory.
	cut.Fixpoint.MaxRows = 3000000
	start := time.Now()
	eng := rasql.New(cut)
	eng.MustRegister(g.Clone())
	_, err = eng.Query(qSSSPStratified)
	m := eng.Metrics()
	stratSSSP := time.Since(start) - time.Duration(m.StageWallNanos) + time.Duration(m.SimNanos)
	var nt *fixpoint.ErrNonTermination
	status := "fixpoint"
	if errors.As(err, &nt) {
		status = fmt.Sprintf("*cut after %d iterations (non-terminating)", nt.Iterations-1)
	} else if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Stratified-SSSP", fmtDur(stratSSSP) + "*", status})

	dur, err = r.runQuery(cfg, qCCStratified, sym)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Stratified-CC", fmtDur(dur), "fixpoint"})

	t.Notes = append(t.Notes,
		fmt.Sprintf("graph: RMAT-%d (paper: RMAT sized for a 16-node cluster); paper reports 14s/10s vs 360s*/1200s", n))
	return t, nil
}

// Figure5 measures the effect of stage combination (Section 7.1).
func (r *Runner) Figure5() (*Table, error) {
	t := &Table{
		ID:      "Figure 5",
		Title:   "Effect of Stage Combination",
		Columns: []string{"dataset", "query", "with combination", "without", "speedup"},
	}
	for _, m := range r.rmatSizes([]int{16, 32, 64, 128}) {
		for _, alg := range []string{"CC", "REACH", "SSSP"} {
			edges := r.rmatFor(m, alg)
			cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}}
			with, err := r.runCliqueOpts(cfg, nil, algQuery(alg), edges)
			if err != nil {
				return nil, err
			}
			// Stage combination requires the partition-aware scheduler
			// (Section 7.1); without it, execution falls back to the
			// default locality-oblivious policy, as on stock Spark.
			uncombined := cfg
			uncombined.Cluster.Policy = rasql.PolicyHybrid
			without, err := r.runCliqueOpts(uncombined, func(o *fixpoint.DistOptions) {
				o.StageCombination = false
			}, algQuery(alg), edges)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("RMAT-%dM/%d", m, r.cfg.Scale), alg,
				fmtDur(with), fmtDur(without), ratio(without, with)})
			r.logf("fig5 %dM %s done", m, alg)
		}
	}
	t.Notes = append(t.Notes, "paper: 3x-5x on REACH, 1.5x-2x on CC/SSSP")
	return t, nil
}

// Figure6 measures decomposed-plan execution and broadcast compression
// (Section 7.2) with the TC query.
func (r *Runner) Figure6() (*Table, error) {
	t := &Table{
		ID:      "Figure 6",
		Title:   "Effect of Decomposition and Compression (TC)",
		Columns: []string{"dataset", "decompose+compress", "decompose only", "no optimizations"},
	}
	grids := []int{40, 60}
	if r.cfg.Quick {
		grids = []int{20}
	}
	type ds struct {
		label string
		rel   *relation.Relation
	}
	var sets []ds
	for _, k := range grids {
		k := k
		sets = append(sets, ds{fmt.Sprintf("Grid%d (paper Grid150/250)", k),
			r.dataset(fmt.Sprintf("grid-%d", k), func() *relation.Relation { return gen.Grid(k, gen.Rng(r.cfg.Seed)) })})
	}
	if !r.cfg.Quick {
		sets = append(sets,
			ds{"G2K-3 (paper G10K-3)", r.dataset("g2k-3", func() *relation.Relation { return gen.Erdos(2000, 1e-3, gen.Rng(r.cfg.Seed)) })},
			ds{"G1K-2 (paper G10K-2)", r.dataset("g1k-2", func() *relation.Relation { return gen.Erdos(1000, 1e-2, gen.Rng(r.cfg.Seed)) })},
		)
	}
	for _, paperM := range []int{40, 80} {
		if r.cfg.Quick {
			break
		}
		tr := r.tree(paperM)
		rel := relation.New("edge", gen.PlainEdgeSchema())
		for i := 1; i < tr.Len(); i++ {
			rel.Append(types.Row{types.Int(int64(tr.Parent[i])), types.Int(int64(i))})
		}
		sets = append(sets, ds{fmt.Sprintf("Tree-%dk (paper N-%dM)", rel.Len()/1000, paperM), rel})
	}

	for _, d := range sets {
		base := rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}
		full, err := r.runQuery(rasql.Config{Cluster: base}, qTC, d.rel)
		if err != nil {
			return nil, err
		}
		noComp := rasql.Config{RawOptimizations: true, Cluster: base}
		noComp.Fixpoint.StageCombination = true
		decompOnly, err := r.runQuery(noComp, qTC, d.rel)
		if err != nil {
			return nil, err
		}
		noOpt := rasql.Config{RawOptimizations: true, Cluster: base}
		noOpt.Fixpoint.StageCombination = true
		noOpt.Fixpoint.DisableDecomposition = true
		none, err := r.runQuery(noOpt, qTC, d.rel)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d.label, fmtDur(full), fmtDur(decompOnly), fmtDur(none)})
		r.logf("fig6 %s done", d.label)
	}
	t.Notes = append(t.Notes, "paper: decomposition ~1.5x-2x; compression roughly halves time on the large tree graphs")
	return t, nil
}

// Figure7 measures whole-stage code generation: fused kernels versus the
// Volcano iterator model (Section 7.3).
func (r *Runner) Figure7() (*Table, error) {
	t := &Table{
		ID:      "Figure 7",
		Title:   "Effect of Code Generation (fused vs Volcano kernels)",
		Columns: []string{"dataset", "query", "with codegen", "without", "speedup"},
	}
	for _, m := range r.rmatSizes([]int{16, 32, 64, 128}) {
		for _, alg := range []string{"CC", "REACH", "SSSP"} {
			edges := r.rmatFor(m, alg)
			cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}}
			with, err := r.runCliqueOpts(cfg, nil, algQuery(alg), edges)
			if err != nil {
				return nil, err
			}
			without, err := r.runCliqueOpts(cfg, func(o *fixpoint.DistOptions) {
				o.Volcano = true
			}, algQuery(alg), edges)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("RMAT-%dM/%d", m, r.cfg.Scale), alg,
				fmtDur(with), fmtDur(without), ratio(without, with)})
			r.logf("fig7 %dM %s done", m, alg)
		}
	}
	t.Notes = append(t.Notes, "paper: 10-20% on CC/SSSP, smaller on REACH; shuffling dominates")
	return t, nil
}

// Figure8 compares the five systems on the RMAT scaling sweep.
func (r *Runner) Figure8() (*Table, error) {
	t := &Table{
		ID:      "Figure 8",
		Title:   "Systems comparison on RMAT graphs (REACH, CC, SSSP)",
		Columns: []string{"dataset", "query", "RaSQL", "BigDatalog", "GraphX", "Giraph", "Myria"},
	}
	sizes := r.rmatSizes([]int{1, 2, 4, 8, 16, 32, 64, 128})
	for _, m := range sizes {
		for _, alg := range []string{"REACH", "CC", "SSSP"} {
			row := []string{fmt.Sprintf("RMAT-%dM/%d", m, r.cfg.Scale), alg}
			for _, sys := range []string{"rasql", "bigdatalog", "graphx", "giraph", "myria"} {
				dur, err := r.runSystem(sys, alg, r.rmatFor(m, alg))
				if err != nil {
					return nil, fmt.Errorf("%s %s RMAT-%dM: %w", sys, alg, m, err)
				}
				row = append(row, fmtDur(dur))
			}
			t.Rows = append(t.Rows, row)
			r.logf("fig8 %dM %s done", m, alg)
		}
	}
	t.Notes = append(t.Notes, "paper: RaSQL fastest or within 10%; GraphX 4x-8x slower; Myria fast when small, scales poorly")
	return t, nil
}

// Figure9 compares the systems on the real-world graph analogs, plus the
// serial GAP baseline.
func (r *Runner) Figure9() (*Table, error) {
	t := &Table{
		ID:      "Figure 9",
		Title:   "Systems comparison on real-world graph analogs",
		Columns: []string{"graph", "query", "RaSQL", "BigDatalog", "GraphX", "Giraph", "Myria", "GAP-serial"},
	}
	div := r.realGraphDiv()
	analogs := gen.RealWorldAnalogs(div)
	if r.cfg.Quick {
		analogs = analogs[:1]
	}
	for _, a := range analogs {
		g := r.dataset("real-"+a.Name, func() *relation.Relation { return a.Generate(gen.Rng(r.cfg.Seed)) })
		for _, alg := range []string{"REACH", "CC", "SSSP"} {
			edges := g
			switch alg {
			case "CC":
				edges = r.dataset("real-"+a.Name+"-sym", func() *relation.Relation {
					return gen.Symmetrized(gen.Unweighted(g))
				})
			case "REACH":
				edges = r.dataset("real-"+a.Name+"-plain", func() *relation.Relation {
					return gen.Unweighted(g)
				})
			}
			row := []string{a.Name, alg}
			for _, sys := range []string{"rasql", "bigdatalog", "graphx", "giraph", "myria", "gap"} {
				dur, err := r.runSystem(sys, alg, edges)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", sys, alg, a.Name, err)
				}
				row = append(row, fmtDur(dur))
			}
			t.Rows = append(t.Rows, row)
			r.logf("fig9 %s %s done", a.Name, alg)
		}
		// Each analog is the suite's largest dataset family; evict it
		// before generating the next to bound peak memory.
		r.FreeDatasets()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graphs are RMAT analogs at 1/%d of the Table 1 sizes, preserving |E|/|V| and skew", div),
		"paper: RaSQL 1st on 9 of 12, 2nd on 3; ~2x over Giraph on REACH/SSSP due to skew handling")
	return t, nil
}

// Figure10 runs the complex-analytics comparison: Delivery, Management and
// MLM over trees, against GraphX and the iterative-SQL baselines.
func (r *Runner) Figure10() (*Table, error) {
	t := &Table{
		ID:      "Figure 10",
		Title:   "Delivery, Management, MLM on trees",
		Columns: []string{"dataset", "query", "RaSQL", "GraphX", "SQL-SN", "SQL-Naive"},
	}
	sizes := []int{40, 80, 160, 300}
	if r.cfg.Quick {
		sizes = []int{40}
	}
	for _, paperM := range sizes {
		tr := r.tree(paperM)
		label := fmt.Sprintf("Tree-%dk (paper N-%dM)", tr.Len()/1000, paperM)
		assbl, basic := tr.AssblBasic(100, gen.Rng(r.cfg.Seed+1))
		report := tr.Report()
		sales, sponsor := tr.SalesSponsor(1000, gen.Rng(r.cfg.Seed+2))

		type workload struct {
			name   string
			query  string
			tables []*relation.Relation
			alg    pregelSpec
		}
		workloads := []workload{
			{"Delivery", qDelivery, []*relation.Relation{assbl, basic}, deliverySpec(tr, basic)},
			{"Management", qManagement, []*relation.Relation{report}, managementSpec(tr)},
			{"MLM", qMLM, []*relation.Relation{sales, sponsor}, mlmSpec(tr, sales)},
		}
		for _, w := range workloads {
			cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}}
			ra, err := r.runQuery(cfg, w.query, w.tables...)
			if err != nil {
				return nil, err
			}
			gx, err := r.runPregelSpec(w.alg, true)
			if err != nil {
				return nil, err
			}
			sn, err := r.runBaseline("sql-sn", fixpoint.DistributedSQLSN, w.query, w.tables...)
			if err != nil {
				return nil, err
			}
			naive, err := r.runBaseline("sql-naive", fixpoint.DistributedSQLNaive, w.query, w.tables...)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{label, w.name, fmtDur(ra), fmtDur(gx), fmtDur(sn), fmtDur(naive)})
			r.logf("fig10 %s %s done", label, w.name)
		}
	}
	t.Notes = append(t.Notes, "paper: RaSQL >=2x GraphX (4x-6x at 300M); SQL-SN ~2x over SQL-Naive but >=4x behind RaSQL")
	return t, nil
}

// Figure11 compares shuffle-hash and sort-merge joins (Appendix D).
func (r *Runner) Figure11() (*Table, error) {
	t := &Table{
		ID:      "Figure 11",
		Title:   "Shuffle-Hash Join vs. Sort-Merge Join",
		Columns: []string{"dataset", "query", "shuffle-hash", "sort-merge", "ratio"},
	}
	for _, m := range r.rmatSizes([]int{16, 32, 64, 128}) {
		for _, alg := range []string{"CC", "REACH", "SSSP"} {
			edges := r.rmatFor(m, alg)
			cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}}
			hash, err := r.runCliqueOpts(cfg, nil, algQuery(alg), edges)
			if err != nil {
				return nil, err
			}
			sm, err := r.runCliqueOpts(cfg, func(o *fixpoint.DistOptions) {
				o.Join = fixpoint.SortMerge
			}, algQuery(alg), edges)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("RMAT-%dM/%d", m, r.cfg.Scale), alg,
				fmtDur(hash), fmtDur(sm), ratio(sm, hash)})
			r.logf("fig11 %dM %s done", m, alg)
		}
	}
	t.Notes = append(t.Notes, "paper: shuffle-hash always wins (build side cached across iterations); gap grows with size")
	return t, nil
}

// Figure12 sweeps the worker count on TC and SG workloads.
func (r *Runner) Figure12() (*Table, error) {
	t := &Table{
		ID:      "Figure 12",
		Title:   "Scaling-out Cluster Size (workers)",
		Columns: []string{"workload", "workers", "time"},
	}
	// Simulated workers: the sweep follows the paper regardless of host
	// cores (sequential simulation reports max-per-worker stage times).
	sweeps := []int{1, 2, 4, 8, 15}
	if r.cfg.Quick {
		sweeps = []int{1, 8}
	}

	g800 := r.dataset("g800-2", func() *relation.Relation { return gen.Erdos(800, 1e-2, gen.Rng(r.cfg.Seed)) })
	grid := r.dataset("grid-50", func() *relation.Relation { return gen.Grid(50, gen.Rng(r.cfg.Seed)) })
	tr := gen.NewTree(7, 2, 3, 0.2, 0, gen.Rng(r.cfg.Seed))
	relTree := relation.New("rel", types.NewSchema(
		types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt)))
	for i := 1; i < tr.Len(); i++ {
		relTree.Append(types.Row{types.Int(int64(tr.Parent[i])), types.Int(int64(i))})
	}
	relErdos := r.dataset("rel-g400", func() *relation.Relation {
		e := gen.Unweighted(gen.Erdos(400, 5e-3, gen.Rng(r.cfg.Seed)))
		out := relation.New("rel", types.NewSchema(
			types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt)))
		out.Rows = e.Rows
		return out
	})

	workloads := []struct {
		name   string
		query  string
		tables []*relation.Relation
	}{
		{"TC-G800 (paper TC-G40K)", qTC, []*relation.Relation{g800}},
		{"TC-Grid50 (paper TC-Grid250)", qTC, []*relation.Relation{grid}},
		{"SG-G400 (paper SG-G10K)", qSG, []*relation.Relation{relErdos}},
		{"SG-Tree7 (paper SG-Tree11)", qSG, []*relation.Relation{relTree}},
	}
	if r.cfg.Quick {
		workloads = workloads[:2]
	}
	for _, w := range workloads {
		for _, workers := range sweeps {
			cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: workers, Partitions: workers}}
			dur, err := r.runQuery(cfg, w.query, w.tables...)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{w.name, fmt.Sprintf("%d", workers), fmtDur(dur)})
			r.logf("fig12 %s w=%d done", w.name, workers)
		}
	}
	t.Notes = append(t.Notes, "paper: 7x/10x speedups on TC/SG moving from 2 to 15 workers")
	return t, nil
}

func ratio(slow, fast time.Duration) string {
	if fast <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(slow)/float64(fast))
}
