package bench

import (
	"fmt"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// Table1 reports the real-world graph analogs against the paper's Table 1.
func (r *Runner) Table1() (*Table, error) {
	t := &Table{
		ID:      "Table 1",
		Title:   "Parameters of Real World Graphs (scaled analogs)",
		Columns: []string{"name", "paper |V|", "paper |E|", "analog |V|", "analog |E|"},
	}
	div := r.realGraphDiv()
	for _, a := range gen.RealWorldAnalogs(div) {
		g := r.dataset("real-"+a.Name, func() *relation.Relation { return a.Generate(gen.Rng(r.cfg.Seed)) })
		t.Rows = append(t.Rows, []string{
			a.Name,
			fmt.Sprintf("%d", a.PaperVertices), fmt.Sprintf("%d", a.PaperEdges),
			fmt.Sprintf("%d", a.Vertices), fmt.Sprintf("%d", g.Len()),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("analogs are skewed RMAT graphs at 1/%d scale preserving |E|/|V|", div))
	return t, nil
}

// Table2 regenerates the synthetic-graph parameter table, computing TC and
// SG result sizes on feasible datasets.
func (r *Runner) Table2() (*Table, error) {
	t := &Table{
		ID:      "Table 2",
		Title:   "Parameters of Synthetic Graphs",
		Columns: []string{"name", "vertices", "edges", "TC rows", "SG rows"},
	}
	count := func(q string, rel *relation.Relation, name string) string {
		cp := relation.FromRows(name, rel.Schema, rel.Rows)
		_ = cp.Name
		eng := rasql.New(rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}})
		eng.MustRegister(cp)
		res, err := eng.Query(q)
		if err != nil {
			return "err"
		}
		return res.Rows[0][0].String()
	}
	vertices := func(rel *relation.Relation) int {
		set := map[int64]struct{}{}
		for _, row := range rel.Rows {
			set[row[0].AsInt()] = struct{}{}
			set[row[1].AsInt()] = struct{}{}
		}
		return len(set)
	}

	// Tree11 at the paper's own parameters (height 11, degree 2-6) is
	// laptop-feasible for TC; its SG output is ~2e9 rows, so SG runs on
	// a height-7 tree instead.
	tree11 := gen.NewTree(11, 2, 6, 0, 0, gen.Rng(r.cfg.Seed))
	t11 := relation.New("edge", gen.PlainEdgeSchema())
	for i := 1; i < tree11.Len(); i++ {
		t11.Append(types.Row{types.Int(int64(tree11.Parent[i])), types.Int(int64(i))})
	}
	tcTree := "(skipped in quick mode)"
	if !r.cfg.Quick {
		tcTree = count(qTC, t11, "edge")
	}
	t.Rows = append(t.Rows, []string{"Tree11", fmt.Sprintf("%d", tree11.Len()),
		fmt.Sprintf("%d", t11.Len()), tcTree, "(paper: 2086271974)"})

	small := []struct {
		name string
		rel  *relation.Relation
		sg   bool
	}{
		{"Grid30 (paper Grid150)", gen.Grid(30, gen.Rng(r.cfg.Seed)), false},
		{"G1K-3 (paper G10K-3)", gen.Erdos(1000, 1e-3, gen.Rng(r.cfg.Seed)), true},
		{"G500-2 (paper G10K-2)", gen.Erdos(500, 1e-2, gen.Rng(r.cfg.Seed)), true},
	}
	for _, s := range small {
		if r.cfg.Quick && s.name != "G1K-3 (paper G10K-3)" {
			continue
		}
		tc := count(qTC, s.rel, "edge")
		sg := "-"
		if s.sg {
			rel2 := relation.New("rel", types.NewSchema(
				types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt)))
			rel2.Rows = gen.Unweighted(s.rel).Rows
			sg = count(qSG, rel2, "rel")
		}
		t.Rows = append(t.Rows, []string{s.name, fmt.Sprintf("%d", vertices(s.rel)),
			fmt.Sprintf("%d", s.rel.Len()), tc, sg})
	}
	t.Notes = append(t.Notes,
		"paper Table 2 sizes (Grid150 TC=131,675,775; G10K-3 TC=1e8 ...) exceed one machine; scaled datasets verify the generators and counts",
	)
	return t, nil
}

// Table3 reproduces the CC benchmark against serial and parallel
// single-machine baselines.
func (r *Runner) Table3() (*Table, error) {
	t := &Table{
		ID:      "Table 3",
		Title:   "CC Benchmark: distributed systems vs single-machine baselines",
		Columns: []string{"graph", "COST", "GAP-serial", "GAP-parallel", "RaSQL", "GraphX", "Giraph"},
	}
	div := r.realGraphDiv()
	analogs := gen.RealWorldAnalogs(div)
	if r.cfg.Quick {
		analogs = analogs[:1]
	}
	for _, a := range analogs {
		g := r.dataset("real-"+a.Name, func() *relation.Relation { return a.Generate(gen.Rng(r.cfg.Seed)) })
		sym := r.dataset("real-"+a.Name+"-sym", func() *relation.Relation {
			return gen.Symmetrized(gen.Unweighted(g))
		})
		row := []string{a.Name}
		for _, sys := range []string{"cost", "gap", "gap-parallel", "rasql", "graphx", "giraph"} {
			dur, err := r.runSystem(sys, "CC", sym)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
		r.logf("table3 %s done", a.Name)
		r.FreeDatasets()
	}
	t.Notes = append(t.Notes,
		"paper: serial wins on small graphs (low overhead), RaSQL/Giraph win on twitter-scale",
		"COST excludes graph build (binary input); GAP-serial includes it")
	return t, nil
}

// Ablations benchmarks the design choices DESIGN.md calls out beyond the
// paper's own figures: SetRDD mutability, scheduling policy, build-side
// caching and semi-naive evaluation.
func (r *Runner) Ablations() (*Table, error) {
	t := &Table{
		ID:      "Ablations",
		Title:   "Design-choice ablations (SSSP on RMAT)",
		Columns: []string{"variant", "time", "vs default"},
	}
	edges := r.rmatFor(16, "SSSP")
	base := rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}

	def, err := r.runQuery(rasql.Config{Cluster: base}, qSSSP, edges)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"default (all optimizations)", fmtDur(def), "1.00x"})

	variants := []struct {
		name string
		cfg  rasql.Config
	}{
		{"immutable state (no SetRDD)", func() rasql.Config {
			cl := base
			cl.ImmutableState = true
			return rasql.Config{Cluster: cl}
		}()},
		{"hybrid scheduling", func() rasql.Config {
			cl := base
			cl.Policy = cluster.PolicyHybrid
			return rasql.Config{Cluster: cl}
		}()},
		{"rebuild join state each iteration", func() rasql.Config {
			cfg := rasql.Config{Cluster: base}
			cfg.Fixpoint.RebuildJoinState = true
			cfg.RawOptimizations = true
			cfg.Cluster.CompressBroadcast = true
			return cfg
		}()},
		{"naive evaluation (local)", rasql.Config{Naive: true}},
		{"semi-naive (local)", rasql.Config{ForceLocal: true}},
	}
	for _, v := range variants {
		dur, err := r.runQuery(v.cfg, qSSSP, edges)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmtDur(dur), ratio(dur, def)})
		r.logf("ablation %s done", v.name)
	}
	return t, nil
}

// Experiments maps experiment ids to their runners.
func (r *Runner) Experiments() map[string]func() (*Table, error) {
	exps := map[string]func() (*Table, error){
		"fig1":      r.Figure1,
		"fig5":      r.Figure5,
		"fig6":      r.Figure6,
		"fig7":      r.Figure7,
		"fig8":      r.Figure8,
		"fig9":      r.Figure9,
		"fig10":     r.Figure10,
		"fig11":     r.Figure11,
		"fig12":     r.Figure12,
		"table1":    r.Table1,
		"table2":    r.Table2,
		"table3":    r.Table3,
		"ablations": r.Ablations,
	}
	r.addRelaxedExperiments(exps)
	return exps
}

// Order lists the experiments in paper order; the beyond-paper relaxed-*
// cells append themselves in relaxed.go's init.
var Order = []string{
	"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"table1", "table2", "table3", "ablations",
}

// All runs every experiment in paper order, evicting cached datasets
// between experiments to bound peak memory.
func (r *Runner) All() ([]*Table, error) {
	exps := r.Experiments()
	var out []*Table
	for _, id := range Order {
		tbl, err := exps[id]()
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, tbl)
		r.FreeDatasets()
	}
	return out, nil
}

// FreeDatasets drops the generated-dataset cache; the next experiment
// regenerates what it needs.
func (r *Runner) FreeDatasets() {
	r.data.m = nil
	r.trees = nil
}

var _ = fixpoint.ShuffleHash // keep the import meaningful for engineConfig docs
