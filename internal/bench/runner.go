// Package bench regenerates every table and figure of the paper's
// evaluation (Section 8 and the appendices) on the simulated cluster.
// Dataset sizes scale down from the paper's 16-node/120-core testbed by a
// configurable divisor; EXPERIMENTS.md records how the measured shapes
// compare with the published ones.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
)

// Config parameterizes a benchmark run.
type Config struct {
	// Scale divides the paper's RMAT vertex counts (default 1000:
	// RMAT-16M becomes RMAT-16K).
	Scale int
	// TreeScale divides the paper's tree node counts (default 256).
	TreeScale int
	// Workers/Partitions size the simulated cluster (default 8,
	// approximating the paper's cluster shape; sequential simulation
	// keeps this meaningful regardless of host cores).
	Workers, Partitions int
	// Seed makes dataset generation reproducible.
	Seed int64
	// Repeat averages each measurement over this many runs (default 1;
	// the paper averages 5).
	Repeat int
	// Quick shrinks sizes further for smoke tests and testing.B runs.
	Quick bool
	// Chaos injects deterministic faults into every cluster-backed
	// measurement (the recovery-overhead experiment of DESIGN.md §9). The
	// zero value measures fault-free runs.
	Chaos rasql.ChaosConfig
	// Progress, when non-nil, receives progress lines.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	if c.TreeScale <= 0 {
		c.TreeScale = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeat <= 0 {
		c.Repeat = 1
	}
	if c.Workers <= 0 {
		// Eight simulated workers approximate the paper's cluster shape;
		// sequential simulation keeps this meaningful on any host.
		c.Workers = 8
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	if c.Quick {
		c.Scale *= 8
		c.TreeScale *= 8
	}
	return c
}

// Runner executes experiments.
type Runner struct {
	cfg   Config
	data  datasetCache
	trees map[string]*gen.Tree
	// totals accumulates the metrics of every cluster-backed measurement
	// since the last TakeTotals, feeding the machine-readable bench output.
	totals cluster.Snapshot
	// curves accumulates per-iteration convergence profiles since the last
	// TakeCurves; curveSeen disambiguates repeated labels within a batch.
	curves    []Curve
	curveSeen map[string]int
	// curvePrefix labels the curves of the measurement in flight (the
	// system or baseline name); empty outside runSystem/runBaseline.
	curvePrefix string
}

// NewRunner creates a runner.
func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg.withDefaults()} }

// Config returns the effective configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Progress != nil {
		fmt.Fprintf(r.cfg.Progress, format+"\n", args...)
	}
}

// Table is one regenerated figure or table.
type Table struct {
	// ID matches the paper ("Figure 5", "Table 3", ...).
	ID    string
	Title string
	// Columns and Rows hold the rendered cells; column 0 is the row label.
	Columns []string
	Rows    [][]string
	// Notes list scaling substitutions and caveats.
	Notes []string
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note: %s*\n", n)
	}
	return b.String()
}

// fmtDur renders a duration compactly (µs/ms/s).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// timeIt measures fn's wall time averaged over cfg.Repeat runs.
func (r *Runner) timeIt(fn func() error) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < r.cfg.Repeat; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(r.cfg.Repeat), nil
}

// timeSim measures a cluster-backed run averaged over cfg.Repeat runs,
// returning the simulated elapsed time: wall time with the in-stage wall
// replaced by the simulated clock (max per-worker time per stage), so that
// worker counts matter even on few-core hosts. fn must return the metrics
// snapshot of the cluster it used.
func (r *Runner) timeSim(fn func() (cluster.Snapshot, error)) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < r.cfg.Repeat; i++ {
		start := time.Now()
		m, err := fn()
		if err != nil {
			return 0, err
		}
		wall := time.Since(start)
		total += wall - time.Duration(m.StageWallNanos) + time.Duration(m.SimNanos)
		r.totals = r.totals.Add(m)
	}
	return total / time.Duration(r.cfg.Repeat), nil
}

// TakeTotals returns the metrics accumulated across all cluster-backed
// measurements since the previous call, and resets the accumulator. The
// bench CLI calls it once per experiment to attribute counters.
func (r *Runner) TakeTotals() cluster.Snapshot {
	t := r.totals
	r.totals = cluster.Snapshot{}
	return t
}

// Record is one experiment's machine-readable result, emitted by the bench
// CLI into BENCH_fixpoint.json so the perf trajectory is comparable across
// changes.
type Record struct {
	Experiment     string `json:"experiment"`
	WallNanos      int64  `json:"wall_nanos"`
	SimNanos       int64  `json:"sim_nanos"`
	ShuffleBytes   int64  `json:"shuffle_bytes"`
	ShuffleRecords int64  `json:"shuffle_records"`
	Allocs         uint64 `json:"allocs"`
	// Recovery counters: zero on fault-free runs, nonzero when the run was
	// benchmarked under -chaos (the recovery-overhead experiment).
	TaskRetries         int64 `json:"task_retries"`
	RowsReplayed        int64 `json:"rows_replayed"`
	RecoveredIterations int64 `json:"recovered_iterations"`
	// Staleness counters: zero under BSP, nonzero when a relaxed-* run
	// consumed deltas past the barrier point, discarded rows an earlier
	// merge had already improved on, or (for BSP arms of the comparison)
	// idled at the stage barrier.
	StaleReads       int64   `json:"stale_reads"`
	SupersededRows   int64   `json:"superseded_rows"`
	BarrierWaitNanos int64   `json:"barrier_wait_nanos"`
	Curves           []Curve `json:"curves,omitempty"`
	// Serving-mode columns: populated only by -clients runs (closed-loop
	// concurrent clients on one shared engine), zero otherwise. Percentiles
	// come from the engine recorder's query-latency histogram.
	Clients       int     `json:"clients,omitempty"`
	DurationNanos int64   `json:"duration_nanos,omitempty"`
	Queries       uint64  `json:"queries,omitempty"`
	QPS           float64 `json:"qps,omitempty"`
	P50Nanos      int64   `json:"p50_nanos,omitempty"`
	P95Nanos      int64   `json:"p95_nanos,omitempty"`
	P99Nanos      int64   `json:"p99_nanos,omitempty"`
	// HTTP serving-mode columns: populated only by -server runs (real HTTP
	// clients against the rasqld serving layer). ColdP50Nanos is the median
	// first-execution latency (plan-cache miss, compile included); the
	// cache counters are the server plan cache's totals over the run.
	ColdP50Nanos    int64 `json:"cold_p50_nanos,omitempty"`
	WarmP50Nanos    int64 `json:"warm_p50_nanos,omitempty"`
	PlanCacheHits   int64 `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses int64 `json:"plan_cache_misses,omitempty"`
}

// CurvePoint is one fixpoint iteration of a convergence curve.
type CurvePoint struct {
	Iter         int   `json:"iter"`
	DeltaRows    int   `json:"deltaRows"`
	AllRows      int   `json:"allRows"`
	ShuffleBytes int64 `json:"shuffleBytes"`
}

// Curve is the per-iteration convergence profile of one traced query run
// (the last repeat when Repeat > 1): how fast the delta shrinks and how
// much shuffle each iteration costs. Mode names the evaluation strategy the
// fixpoint engine actually picked (dsn-combined, dsn-two-stage, sql-naive,
// local, ...).
type Curve struct {
	Label  string       `json:"label"`
	Mode   string       `json:"mode"`
	Points []CurvePoint `json:"points"`
}

// TakeCurves returns the convergence curves recorded since the previous
// call and resets the accumulator, mirroring TakeTotals.
func (r *Runner) TakeCurves() []Curve {
	c := r.curves
	r.curves, r.curveSeen = nil, nil
	return c
}

// recordCurve files one traced run's iteration telemetry under label,
// suffixing repeated labels (#2, #3, ...) so every run in a batch stays
// addressable.
func (r *Runner) recordCurve(label string, iters []rasql.TraceIteration) {
	if len(iters) == 0 {
		return
	}
	if r.curveSeen == nil {
		r.curveSeen = make(map[string]int)
	}
	r.curveSeen[label]++
	if n := r.curveSeen[label]; n > 1 {
		label = fmt.Sprintf("%s#%d", label, n)
	}
	c := Curve{Label: label, Mode: iters[0].Mode, Points: make([]CurvePoint, 0, len(iters))}
	for _, it := range iters {
		c.Points = append(c.Points, CurvePoint{
			Iter: it.Iter, DeltaRows: it.DeltaRows, AllRows: it.AllRows,
			ShuffleBytes: it.ShuffleBytes,
		})
	}
	r.curves = append(r.curves, c)
}

// curveLabel derives a curve label from the measurement context: system or
// baseline prefix, the recursive view's name, and the driving table.
func (r *Runner) curveLabel(query string, tables []*relation.Relation) string {
	label := recViewName(query)
	if len(tables) > 0 && tables[0].Name != "" {
		label += "@" + tables[0].Name + "-" + fmt.Sprint(tables[0].Len())
	}
	if r.curvePrefix != "" {
		label = r.curvePrefix + ":" + label
	}
	return label
}

// recViewName extracts the recursive view's name from a query text
// ("WITH recursive path (Dst, ...)" → "path") for curve labels.
func recViewName(query string) string {
	fields := strings.Fields(query)
	for i, f := range fields {
		if !strings.EqualFold(f, "recursive") || i+1 >= len(fields) {
			continue
		}
		name := fields[i+1]
		if j := strings.IndexAny(name, "(,"); j >= 0 {
			name = name[:j]
		}
		if name != "" {
			return strings.ToLower(name)
		}
	}
	return "query"
}

// engineConfig builds a rasql.Config for one of the compared system
// profiles. The mapping follows DESIGN.md's substitution table:
//
//	rasql      — all paper optimizations on (the default engine)
//	bigdatalog — SetRDD-era engine: two-stage DSN, no stage combination,
//	             no whole-stage fusion, uncompressed broadcast
//	myria      — low per-stage overhead, communication degrading with
//	             shuffle volume
//	sql-sn     — per-iteration SQL jobs with deltas (see fixpoint)
//	sql-naive  — per-iteration SQL jobs recomputing everything
func engineConfig(system string, workers, partitions int) rasql.Config {
	cl := rasql.ClusterConfig{Workers: workers, Partitions: partitions}
	switch system {
	case "rasql":
		return rasql.Config{Cluster: cl}
	case "bigdatalog":
		cfg := rasql.Config{RawOptimizations: true, Cluster: cl}
		cfg.Fixpoint.Volcano = true
		return cfg
	case "myria":
		cl.StageOverheadOps = 2000
		cl.ShufflePenaltyOpsPerByte = 60
		cfg := rasql.Config{RawOptimizations: true, Cluster: cl}
		return cfg
	default:
		panic("bench: unknown system " + system)
	}
}

// runQuery times one query on a fresh engine with the given tables,
// in simulated time. Every run carries an iterations-only tracer — a
// handful of slice appends per fixpoint iteration, cheap enough to leave
// attached while timing — and the last repeat's profile is recorded as a
// convergence curve.
func (r *Runner) runQuery(cfg rasql.Config, query string, tables ...*relation.Relation) (time.Duration, error) {
	cfg.Cluster.Chaos = r.cfg.Chaos
	var iters []rasql.TraceIteration
	d, err := r.timeSim(func() (cluster.Snapshot, error) {
		eng := rasql.New(cfg)
		eng.SetTracer(rasql.NewIterationsTracer())
		for _, t := range tables {
			// Engines only scan registered relations; sharing them across
			// runs keeps the measurement on query execution.
			eng.MustRegister(t)
		}
		_, err := eng.Query(query)
		iters = eng.Tracer().Iterations()
		return eng.Metrics(), err
	})
	if err == nil {
		r.recordCurve(r.curveLabel(query, tables), iters)
	}
	return d, err
}

// runClique times just the fixpoint of a query (loading included, final
// projection excluded), used where the paper reports pure recursion time.
func (r *Runner) runCliqueOpts(cfg rasql.Config, opts func(*fixpoint.DistOptions), query string, tables ...*relation.Relation) (time.Duration, error) {
	if opts != nil {
		opts(&cfg.Fixpoint)
	}
	return r.runQuery(cfg, query, tables...)
}
