package bench

import (
	"fmt"
	"strings"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
)

// The barrier-relaxation experiments measure the DESIGN.md §11 evaluation
// modes — SSP(k) bounded staleness and fully-asynchronous — against the BSP
// baseline, fault-free and under a rotating straggler schedule that slows
// one partition per iteration (the regime barrier relaxation targets: a BSP
// run pays every straggler on the critical path, a relaxed run overlaps it
// with the other partitions' progress). Each (mode, schedule) cell is its
// own experiment so BENCH_fixpoint.json carries per-mode sim_nanos and
// staleness counters that CI can compare.

// relaxedModes lists the compared evaluation modes: experiment-id suffix
// and the -mode flag spelling it measures.
var relaxedModes = []struct{ id, flag string }{
	{"bsp", "bsp"},
	{"ssp2", "ssp:2"},
	{"async", "async"},
}

// relaxedIDs returns the experiment ids in comparison order: the fault-free
// sweep first, then the straggler variants.
func relaxedIDs() []string {
	var ids []string
	for _, sched := range []string{"", "-straggler"} {
		for _, m := range relaxedModes {
			ids = append(ids, "relaxed-"+m.id+sched)
		}
	}
	return ids
}

func init() {
	for _, id := range relaxedIDs() {
		Order = append(Order, id)
		Commentary[id] = relaxedCommentary
	}
}

// addRelaxedExperiments registers the six (mode × schedule) cells into the
// experiment registry; Experiments calls it after the paper figures.
func (r *Runner) addRelaxedExperiments(exps map[string]func() (*Table, error)) {
	for _, m := range relaxedModes {
		m := m
		exps["relaxed-"+m.id] = func() (*Table, error) { return r.relaxedCell(m.id, m.flag, false) }
		exps["relaxed-"+m.id+"-straggler"] = func() (*Table, error) { return r.relaxedCell(m.id, m.flag, true) }
	}
}

// stragglerRounds is the length of the rotating straggler schedule — long
// enough to cover every iteration of the high-diameter grid workload.
const stragglerRounds = 256

// stragglerOps is the extra simulated CPU each scheduled straggler burns
// (~8x the chaos default: a visibly slow executor, not a blip).
const stragglerOps = 400000

// stragglerChaos builds the rotating straggler schedule: iteration o slows
// partition o mod parts. Deterministic (no Rate), so the only difference
// between the BSP and relaxed arms is how much of the slowdown lands on the
// critical path.
func stragglerChaos(parts int) rasql.ChaosConfig {
	cfg := rasql.ChaosConfig{StragglerOps: stragglerOps}
	for o := 0; o < stragglerRounds; o++ {
		cfg.Schedule = append(cfg.Schedule, rasql.ChaosEvent{
			Occurrence: o, Part: o % parts, Kind: rasql.FaultStraggler,
		})
	}
	return cfg
}

// relaxedWorkload is one measured (query, dataset) pair.
type relaxedWorkload struct {
	label string
	query string
	rel   *relation.Relation
}

// relaxedWorkloads returns the measured workloads: a Figure 6-style grid
// SSSP whose long diameter maximizes the number of barriers a BSP run pays —
// the regime barrier relaxation targets. One workload per cell keeps each
// BENCH_fixpoint.json record a single per-mode measurement; the shallow
// skewed RMAT graphs of Figures 5/8 sit in the same JSON for contrast (there
// deltas are large and rounds few, so stale re-derivation can cost more than
// the barriers save — see the commentary).
func (r *Runner) relaxedWorkloads() []relaxedWorkload {
	k := 40
	if r.cfg.Quick {
		k = 16
	}
	grid := r.dataset(fmt.Sprintf("grid-%d", k), func() *relation.Relation {
		return gen.Grid(k, gen.Rng(r.cfg.Seed))
	})
	return []relaxedWorkload{
		{fmt.Sprintf("SSSP-Grid%d (high diameter)", k), qSSSP, grid},
	}
}

// relaxedCell runs every workload under one (mode, schedule) combination.
func (r *Runner) relaxedCell(modeID, modeFlag string, straggler bool) (*Table, error) {
	sched := "fault-free"
	if straggler {
		sched = "rotating-straggler"
	}
	t := &Table{
		ID:      "Relaxed " + modeID + "/" + sched,
		Title:   fmt.Sprintf("Barrier relaxation: %s, %s schedule", modeFlag, sched),
		Columns: []string{"workload", "mode", "schedule", "time"},
	}
	evalMode, k, err := rasql.ParseEvalMode(modeFlag)
	if err != nil {
		return nil, err
	}
	if straggler {
		saved := r.cfg.Chaos
		r.cfg.Chaos = stragglerChaos(r.cfg.Partitions)
		defer func() { r.cfg.Chaos = saved }()
	}
	r.curvePrefix = "relaxed-" + modeID
	defer func() { r.curvePrefix = "" }()
	for _, w := range r.relaxedWorkloads() {
		cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}}
		cfg.Fixpoint.Mode = evalMode
		cfg.Fixpoint.Staleness = k
		dur, err := r.runQuery(cfg, w.query, w.rel)
		if err != nil {
			return nil, err
		}
		// SSSP is PreM-certified, so a relaxed run must actually be relaxed;
		// a silent BSP fallback here means the eligibility gate regressed.
		if n := len(r.curves); evalMode != rasql.ModeBSP && n > 0 {
			if m := r.curves[n-1].Mode; !strings.HasPrefix(m, "dsn-ssp") && m != "dsn-async" {
				return nil, fmt.Errorf("bench: %s fell back to %s on %s", modeFlag, m, w.label)
			}
		}
		t.Rows = append(t.Rows, []string{w.label, modeFlag, sched, fmtDur(dur)})
		r.logf("relaxed %s %s %s done", modeID, sched, w.label)
	}
	t.Notes = append(t.Notes,
		"compare sim_nanos across the relaxed-* records: relaxed modes win where stragglers or skew leave BSP barriers waiting")
	return t, nil
}

const relaxedCommentary = `**Beyond the paper:** the RaSQL paper evaluates a
BSP fixpoint only; these cells measure the DESIGN.md §11 barrier-relaxed
modes against it on the high-diameter grid SSSP, where one fixpoint pays
a barrier per grid hop (~80 rounds on Grid40). Fault-free, the three
modes land within noise of each other —
the barrier costs little when partitions progress uniformly, and the
relaxed run pays some extra work (stale deltas derive rows a barrier would
have superseded first, visible in superseded_rows). Under the rotating
straggler schedule the modes separate: BSP stalls every iteration behind
the one slowed partition (barrier_wait_nanos), while SSP(2) and async keep
the other partitions deriving, so simulated time improves and stale_reads
counts the deltas consumed past the barrier point. The effect inverts on
the shallow skewed RMAT graphs of Figures 5/8 (same JSON, fig5/fig8
records): with big deltas and few rounds, stale re-derivation costs more
than the barriers save, which is why the engine keeps BSP the default.
Results stay set-identical to BSP either way, because the relaxed modes
only run on PreM-certified (or set-semantics) cliques.`
