package bench

import (
	"strings"
	"testing"
	"time"
)

func quickRunner() *Runner {
	return NewRunner(Config{Quick: true, Seed: 3, Workers: 4})
}

func TestConfigDefaults(t *testing.T) {
	cfg := NewRunner(Config{}).Config()
	if cfg.Scale != 1000 || cfg.TreeScale != 256 || cfg.Repeat != 1 || cfg.Workers != 8 {
		t.Errorf("defaults = %+v", cfg)
	}
	q := NewRunner(Config{Quick: true}).Config()
	if q.Scale != 8000 {
		t.Errorf("quick scale = %d", q.Scale)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "Figure X", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"row1", "1"}, {"longer-row", "2"}},
		Notes:   []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"Figure X", "longer-row", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "### Figure X") {
		t.Errorf("markdown wrong:\n%s", md)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		42 * time.Millisecond:   "42ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	r := quickRunner()
	exps := r.Experiments()
	for _, id := range Order {
		if _, ok := exps[id]; !ok {
			t.Errorf("experiment %q in Order but not registered", id)
		}
	}
	if len(exps) != len(Order) {
		t.Errorf("registry has %d experiments, Order lists %d", len(exps), len(Order))
	}
}

// TestFigure1Shape runs the cheapest full experiment and validates the
// table structure and the expected ordering (stratified slower).
func TestFigure1Shape(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	labels := map[string]bool{}
	for _, row := range tbl.Rows {
		labels[row[0]] = true
	}
	for _, want := range []string{"RaSQL-SSSP", "RaSQL-CC", "Stratified-SSSP", "Stratified-CC"} {
		if !labels[want] {
			t.Errorf("missing row %q", want)
		}
	}
	// The stratified SSSP must be reported as cut (non-terminating).
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "Stratified-SSSP" && strings.Contains(row[2], "non-terminating") {
			found = true
		}
	}
	if !found {
		t.Error("stratified SSSP should be cut on a cyclic graph")
	}
}

func TestTable1Shape(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "livejournal" {
		t.Errorf("first analog = %q", tbl.Rows[0][0])
	}
}

func TestSystemsRun(t *testing.T) {
	r := quickRunner()
	edges := r.rmatFor(1, "SSSP")
	for _, sys := range []string{"rasql", "bigdatalog", "myria", "graphx", "giraph", "gap"} {
		if _, err := r.runSystem(sys, "SSSP", edges); err != nil {
			t.Errorf("%s: %v", sys, err)
		}
	}
	if _, err := r.runSystem("nope", "SSSP", edges); err == nil {
		t.Error("unknown system should error")
	}
}

func TestCommentaryCoversEveryExperiment(t *testing.T) {
	for _, id := range Order {
		if _, ok := Commentary[id]; !ok {
			t.Errorf("experiment %q has no paper-vs-measured commentary", id)
		}
	}
	for id := range Commentary {
		found := false
		for _, o := range Order {
			if o == id {
				found = true
			}
		}
		if !found {
			t.Errorf("commentary for unknown experiment %q", id)
		}
	}
}

// TestConvergenceCurves checks that cluster-backed measurements record
// per-iteration convergence profiles and that TakeCurves drains them.
func TestConvergenceCurves(t *testing.T) {
	r := quickRunner()
	edges := r.rmatFor(1, "SSSP")
	if _, err := r.runSystem("rasql", "SSSP", edges); err != nil {
		t.Fatal(err)
	}
	if _, err := r.runSystem("rasql", "SSSP", edges); err != nil {
		t.Fatal(err)
	}
	curves := r.TakeCurves()
	if len(curves) != 2 {
		t.Fatalf("curves = %d, want 2", len(curves))
	}
	c := curves[0]
	if !strings.HasPrefix(c.Label, "rasql:") || c.Mode == "" || len(c.Points) == 0 {
		t.Fatalf("malformed curve: %+v", c)
	}
	if curves[1].Label != c.Label+"#2" {
		t.Errorf("duplicate label not disambiguated: %q vs %q", c.Label, curves[1].Label)
	}
	last := c.Points[len(c.Points)-1]
	if last.DeltaRows != 0 {
		t.Errorf("converged curve should end with an empty delta, got %d", last.DeltaRows)
	}
	if last.AllRows == 0 {
		t.Error("final relation size missing from curve")
	}
	if r.TakeCurves() != nil {
		t.Error("TakeCurves did not reset the accumulator")
	}
}

// TestRelaxedStragglerCells runs the straggler arms of the barrier-relaxation
// comparison and checks the structural claim behind them: with a rotating
// straggler slowing one partition per iteration, SSP(2) spends no more
// simulated time than BSP, and the staleness counters attribute the
// difference (BSP idles at barriers, the relaxed run reads stale deltas).
func TestRelaxedStragglerCells(t *testing.T) {
	r := quickRunner()
	exps := r.Experiments()
	tbl, err := exps["relaxed-bsp-straggler"]()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 workload", len(tbl.Rows))
	}
	bsp := r.TakeTotals()
	r.TakeCurves()
	if _, err := exps["relaxed-ssp2-straggler"](); err != nil {
		t.Fatal(err)
	}
	ssp := r.TakeTotals()
	if ssp.SimNanos > bsp.SimNanos {
		t.Errorf("ssp:2 sim time %d > bsp %d under the straggler schedule", ssp.SimNanos, bsp.SimNanos)
	}
	if bsp.BarrierWaitNanos == 0 {
		t.Error("bsp arm recorded no barrier wait")
	}
	if bsp.StaleReads != 0 || bsp.SupersededRows != 0 {
		t.Errorf("bsp arm recorded staleness telemetry: stale=%d superseded=%d",
			bsp.StaleReads, bsp.SupersededRows)
	}
	if ssp.StaleReads == 0 && ssp.SupersededRows == 0 {
		t.Error("relaxed arm recorded no staleness telemetry")
	}
	curves := r.TakeCurves()
	if len(curves) == 0 {
		t.Fatal("no convergence curves recorded")
	}
	for _, c := range curves {
		if c.Mode != "dsn-ssp(2)" {
			t.Errorf("curve %s mode = %q, want dsn-ssp(2)", c.Label, c.Mode)
		}
		if !strings.HasPrefix(c.Label, "relaxed-ssp2:") {
			t.Errorf("curve label %q missing experiment prefix", c.Label)
		}
	}
}

func TestRecViewName(t *testing.T) {
	cases := map[string]string{
		"WITH recursive path (Dst, min() AS Cost) AS ...": "path",
		"with RECURSIVE cc(X, min() as C) as (...)":       "cc",
		"SELECT 1": "query",
	}
	for q, want := range cases {
		if got := recViewName(q); got != want {
			t.Errorf("recViewName(%q) = %q, want %q", q, got, want)
		}
	}
}
