package bench

import (
	"fmt"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/gap"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/pregel"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
)

// runSystem times one (system, algorithm, graph) cell of Figures 8/9.
func (r *Runner) runSystem(sys, alg string, edges *relation.Relation) (time.Duration, error) {
	switch sys {
	case "rasql", "bigdatalog", "myria":
		cfg := engineConfig(sys, r.cfg.Workers, r.cfg.Partitions)
		r.curvePrefix = sys
		defer func() { r.curvePrefix = "" }()
		return r.runQuery(cfg, algQuery(alg), edges)
	case "graphx", "giraph":
		profile := pregel.ProfileGiraph
		if sys == "graphx" {
			profile = pregel.ProfileGraphX
		}
		palg := pregel.SSSP
		switch alg {
		case "CC":
			palg = pregel.CC
		case "REACH":
			palg = pregel.Reach
		}
		return r.timeSim(func() (cluster.Snapshot, error) {
			q := cluster.New(cluster.Config{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}).NewQuery(nil)
			_, _, err := pregel.Run(q, edges, palg, pregel.Options{Profile: profile, Source: 1})
			return q.Metrics.Snapshot(), err
		})
	case "gap":
		return r.timeIt(func() error {
			g := gap.NewCSR(edges)
			switch alg {
			case "CC":
				g.CC()
			case "REACH":
				g.BFS(1)
			default:
				g.SSSP(1)
			}
			return nil
		})
	case "gap-parallel":
		return r.timeIt(func() error {
			gap.NewCSR(edges).CCParallel(r.cfg.Workers)
			return nil
		})
	case "cost":
		// COST reads a pre-built binary graph; model it by excluding the
		// CSR build from the measured time.
		g := gap.NewCSR(edges)
		return r.timeIt(func() error {
			g.CC()
			return nil
		})
	default:
		return 0, fmt.Errorf("bench: unknown system %q", sys)
	}
}

// baselineFn is one of the fixpoint SQL-loop baselines.
type baselineFn func(*analyze.Clique, *exec.Context, *cluster.QueryContext, fixpoint.DistOptions) (*fixpoint.Result, error)

// runBaseline times a query through one of the iterative-SQL baselines;
// name labels its convergence curve ("sql-sn", "sql-naive").
func (r *Runner) runBaseline(name string, fn baselineFn, query string, tables ...*relation.Relation) (time.Duration, error) {
	var iters []rasql.TraceIteration
	d, err := r.timeSim(func() (cluster.Snapshot, error) {
		c := cluster.New(cluster.Config{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions,
			Policy: cluster.PolicyHybrid}).NewQuery(rasql.NewIterationsTracer())
		cat := catalog.New()
		for _, t := range tables {
			if err := cat.Register(t); err != nil {
				return c.Metrics.Snapshot(), err
			}
		}
		stmts, err := parser.Parse(query)
		if err != nil {
			return c.Metrics.Snapshot(), err
		}
		prog, err := analyze.Statements(stmts, cat)
		if err != nil {
			return c.Metrics.Snapshot(), err
		}
		ctx := exec.NewContext()
		var opt fixpoint.DistOptions
		tr := c.Tracer
		opt.Tracer = tr
		res, err := fn(prog.Clique, ctx, c, opt)
		iters = tr.Iterations()
		if err != nil {
			return c.Metrics.Snapshot(), err
		}
		res.Bind(ctx)
		_, err = exec.Query(prog.Final, ctx)
		return c.Metrics.Snapshot(), err
	})
	if err == nil {
		prev := r.curvePrefix
		r.curvePrefix = name
		r.recordCurve(r.curveLabel(query, tables), iters)
		r.curvePrefix = prev
	}
	return d, err
}

// pregelSpec describes a vertex-centric Figure 10 workload for the GraphX
// comparator.
type pregelSpec struct {
	alg   pregel.Algorithm
	edges *relation.Relation
	opts  pregel.Options
}

// deliverySpec builds the vertex-centric BOM workload: sub-part → part
// edges, leaf days as initial values, max propagation.
func deliverySpec(tr *gen.Tree, basic *relation.Relation) pregelSpec {
	edges := relation.New("edge", gen.PlainEdgeSchema())
	for i := 1; i < tr.Len(); i++ {
		edges.Append(types.Row{types.Int(int64(i)), types.Int(int64(tr.Parent[i]))})
	}
	init := make(map[int64]float64, basic.Len())
	for _, row := range basic.Rows {
		init[row[0].AsInt()] = row[1].AsFloat()
	}
	return pregelSpec{alg: pregel.MaxProp, edges: edges, opts: pregel.Options{InitValues: init}}
}

// managementSpec builds the vertex-centric subordinate count: Emp → Mgr
// edges, everyone starting at 1, sums flowing up.
func managementSpec(tr *gen.Tree) pregelSpec {
	edges := relation.New("edge", gen.PlainEdgeSchema())
	init := make(map[int64]float64, tr.Len())
	for i := 1; i < tr.Len(); i++ {
		edges.Append(types.Row{types.Int(int64(i)), types.Int(int64(tr.Parent[i]))})
		init[int64(i)] = 1
	}
	return pregelSpec{alg: pregel.SumUp, edges: edges, opts: pregel.Options{InitValues: init}}
}

// mlmSpec builds the vertex-centric bonus computation: member → sponsor
// edges, initial bonuses P*0.1, halved per level.
func mlmSpec(tr *gen.Tree, sales *relation.Relation) pregelSpec {
	edges := relation.New("edge", gen.PlainEdgeSchema())
	for i := 1; i < tr.Len(); i++ {
		edges.Append(types.Row{types.Int(int64(i)), types.Int(int64(tr.Parent[i]))})
	}
	init := make(map[int64]float64, sales.Len())
	for _, row := range sales.Rows {
		init[row[0].AsInt()] = row[1].AsFloat() * 0.1
	}
	return pregelSpec{alg: pregel.SumUp, edges: edges, opts: pregel.Options{Factor: 0.5, InitValues: init}}
}

// runPregelSpec times a Figure 10 vertex-centric workload.
func (r *Runner) runPregelSpec(spec pregelSpec, graphx bool) (time.Duration, error) {
	opts := spec.opts
	if graphx {
		opts.Profile = pregel.ProfileGraphX
	}
	return r.timeSim(func() (cluster.Snapshot, error) {
		q := cluster.New(cluster.Config{Workers: r.cfg.Workers, Partitions: r.cfg.Partitions}).NewQuery(nil)
		_, _, err := pregel.Run(q, spec.edges, spec.alg, opts)
		return q.Metrics.Snapshot(), err
	})
}
