package bench

import (
	"fmt"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
)

// Workload queries. REACH and SSSP start from vertex 1, which every
// generated graph contains.
const (
	qSSSP = `
		WITH recursive path (Dst, min() AS Cost) AS
		    (SELECT 1, 0) UNION
		    (SELECT edge.Dst, path.Cost + edge.Cost
		     FROM path, edge WHERE path.Dst = edge.Src)
		SELECT Dst, Cost FROM path`
	qReach = `
		WITH recursive reach (Dst) AS
		    (SELECT 1) UNION
		    (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
		SELECT Dst FROM reach`
	qCC = `
		WITH recursive cc (Src, min() AS CmpId) AS
		    (SELECT Src, Src FROM edge) UNION
		    (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src)
		SELECT count(distinct cc.CmpId) FROM cc`
	qTC = `
		WITH recursive tc (Src, Dst) AS
		    (SELECT Src, Dst FROM edge) UNION
		    (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
		SELECT count(*) FROM tc`
	qSG = `
		WITH recursive sg (X, Y) AS
		    (SELECT a.Child, b.Child FROM rel a, rel b
		     WHERE a.Parent = b.Parent AND a.Child <> b.Child)
		    UNION
		    (SELECT a.Child, b.Child FROM rel a, sg, rel b
		     WHERE a.Parent = sg.X AND b.Parent = sg.Y)
		SELECT count(*) FROM sg`
	qDelivery = `
		WITH recursive waitfor(Part, max() as Days) AS
		    (SELECT Part, Days FROM basic) UNION
		    (SELECT assbl.Part, waitfor.Days
		     FROM assbl, waitfor WHERE assbl.Spart = waitfor.Part)
		SELECT Part, Days FROM waitfor`
	qManagement = `
		WITH recursive empCount (Mgr, count() AS Cnt) AS
		    (SELECT report.Emp, 1 FROM report) UNION
		    (SELECT report.Mgr, empCount.Cnt
		     FROM empCount, report WHERE empCount.Mgr = report.Emp)
		SELECT Mgr, Cnt FROM empCount`
	qMLM = `
		WITH recursive bonus(M, sum() as B) AS
		    (SELECT M, P*0.1 FROM sales) UNION
		    (SELECT sponsor.M1, bonus.B*0.5 FROM bonus, sponsor
		     WHERE bonus.M = sponsor.M2)
		SELECT M, B FROM bonus`
	qSSSPStratified = `
		WITH recursive path (Dst, Cost) AS
		    (SELECT 1, 0) UNION
		    (SELECT edge.Dst, path.Cost + edge.Cost
		     FROM path, edge WHERE path.Dst = edge.Src)
		SELECT Dst, min(Cost) FROM path GROUP BY Dst`
	qCCStratified = `
		WITH recursive cc (Src, CmpId) AS
		    (SELECT Src, Src FROM edge) UNION
		    (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src),
		labels(Src, M) AS
		    (SELECT Src, min(CmpId) FROM cc GROUP BY Src)
		SELECT count(distinct M) FROM labels`
)

// realGraphDiv returns the scale divisor for the Table 1 real-graph
// analogs: 1/512 of the originals at the default Scale (the twitter analog
// is then ~81K vertices / 2.8M edges, the largest dataset in the suite).
func (r *Runner) realGraphDiv() int {
	div := 512 * r.cfg.Scale / 1000
	if div < 64 {
		div = 64
	}
	return div
}

// cache memoizes generated datasets within one Runner.
type datasetCache struct {
	m map[string]*relation.Relation
}

func (r *Runner) dataset(key string, build func() *relation.Relation) *relation.Relation {
	if r.data.m == nil {
		r.data.m = map[string]*relation.Relation{}
	}
	if rel, ok := r.data.m[key]; ok {
		return rel
	}
	r.logf("generating %s ...", key)
	rel := build()
	r.data.m[key] = rel
	return rel
}

// rmat returns the weighted RMAT graph with the given paper vertex count,
// scaled by cfg.Scale.
func (r *Runner) rmat(paperMillions int) *relation.Relation {
	n := paperMillions * 1000000 / r.cfg.Scale
	if n < 256 {
		n = 256
	}
	return r.dataset(fmt.Sprintf("rmat-%dM", paperMillions), func() *relation.Relation {
		return gen.RMATDefault(n, gen.Rng(r.cfg.Seed))
	})
}

// rmatFor returns the RMAT graph prepared for one algorithm: weighted for
// SSSP, plain for REACH, symmetrized plain for CC.
func (r *Runner) rmatFor(paperMillions int, alg string) *relation.Relation {
	g := r.rmat(paperMillions)
	switch alg {
	case "CC":
		return r.dataset(fmt.Sprintf("rmat-%dM-sym", paperMillions), func() *relation.Relation {
			return gen.Symmetrized(gen.Unweighted(g))
		})
	case "REACH":
		return r.dataset(fmt.Sprintf("rmat-%dM-plain", paperMillions), func() *relation.Relation {
			return gen.Unweighted(g)
		})
	default:
		return g
	}
}

func algQuery(alg string) string {
	switch alg {
	case "CC":
		return qCC
	case "REACH":
		return qReach
	default:
		return qSSSP
	}
}

// tree returns a random tree with roughly the given paper node count,
// scaled by cfg.TreeScale (the paper's Section 8.2 parameters: 5-10
// children, 20-60% leaf probability).
func (r *Runner) tree(paperMillions int) *gen.Tree {
	target := paperMillions * 1000000 / r.cfg.TreeScale
	if target < 1000 {
		target = 1000
	}
	key := fmt.Sprintf("tree-%dM", paperMillions)
	if r.trees == nil {
		r.trees = map[string]*gen.Tree{}
	}
	if t, ok := r.trees[key]; ok {
		return t
	}
	r.logf("generating %s (%d nodes)...", key, target)
	t := gen.NewTree(13, 5, 10, 0.4, target, gen.Rng(r.cfg.Seed))
	r.trees[key] = t
	return t
}
