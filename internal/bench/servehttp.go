package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/server"
)

// ServeHTTP runs the end-to-end serving benchmark: the same closed-loop
// workload as Serve, but each client is a real HTTP client issuing
// POST /v1/query against a rasqld-style server on a loopback listener, so
// the measured latency includes admission control, the plan-cache lookup,
// JSON encoding and the network round trip. Latency percentiles are
// client-observed wall times, not engine-side histogram readouts.
//
// Before the clients start, a sequential cold/warm probe measures the same
// statement on the plan-cache miss path and the hit path in interleaved
// pairs; ColdP50/WarmP50 are the two medians, so their gap is the
// request-level cost the plan cache saves. The closed-loop phase then runs
// the recursive mix with every plan cached.
func (r *Runner) ServeHTTP(id string, clients int, duration time.Duration, started func(*rasql.MetricsRegistry)) (*Table, *ServeResult, error) {
	if clients <= 0 {
		return nil, nil, fmt.Errorf("bench: serve needs at least one client (got %d)", clients)
	}
	if duration <= 0 {
		return nil, nil, fmt.Errorf("bench: serve needs a positive duration (got %v)", duration)
	}
	var paperM int
	switch id {
	case "fig5":
		paperM = r.rmatSizes([]int{16, 32, 64, 128})[0]
	case "fig8":
		paperM = r.rmatSizes([]int{1, 2, 4, 8, 16, 32, 64, 128})[0]
	default:
		return nil, nil, fmt.Errorf("bench: experiment %q has no serving workload (use fig5 or fig8)", id)
	}
	edges := r.rmat(paperM)
	queries := []struct{ label, sql string }{
		{"REACH", qReach},
		{"CC", qCC},
		{"SSSP", qSSSP},
	}

	cfg := engineConfig("rasql", r.cfg.Workers, r.cfg.Partitions)
	cfg.Cluster.Chaos = r.cfg.Chaos
	eng := rasql.New(cfg)
	eng.MustRegister(edges)
	if started != nil {
		started(eng.Observability().Registry())
	}
	srv := server.New(eng, server.Config{MaxConcurrent: clients, QueueDepth: 2 * clients})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("bench: serve-http listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	//rasql:detach -- Serve returns when Close tears the listener down at the end of this run
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	r.logf("serve-http %s: %d clients for %v over RMAT-%dM/%d (%d edges) on %s",
		id, clients, duration, paperM, r.cfg.Scale, edges.Len(), base)

	// Cold/warm probe: the same statement measured sequentially on the
	// plan-cache miss path (cache dropped before every request) and then on
	// the hit path. A cheap aggregate keeps execution time small relative
	// to the compile work the cache saves, so the p50 difference isolates
	// the cache benefit instead of drowning it in fixpoint runtime; the
	// recursive mix below still provides the end-to-end load numbers.
	// Samples interleave in miss/hit pairs — drop the cache, time the next
	// request (cold), time the immediate repeat (warm) — so slow ambient
	// drift (GC, scheduler) hits both series equally and the p50 gap is
	// attributable to the cache alone.
	const qProbe = `SELECT count(*) FROM edge`
	const probePairs = 100
	cold := make([]time.Duration, 0, probePairs)
	warm := make([]time.Duration, 0, probePairs)
	for i := 0; i < probePairs; i++ {
		srv.Cache().Reset()
		t0 := time.Now()
		if _, err := httpQuery(base, "", qProbe); err != nil {
			return nil, nil, fmt.Errorf("bench: serve-http cold probe: %w", err)
		}
		t1 := time.Now()
		cold = append(cold, t1.Sub(t0))
		if _, err := httpQuery(base, "", qProbe); err != nil {
			return nil, nil, fmt.Errorf("bench: serve-http warm probe: %w", err)
		}
		warm = append(warm, time.Since(t1))
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
	coldP50, warmP50 := cold[len(cold)/2], warm[len(warm)/2]
	srv.Cache().Reset() // the load phase compiles its own mix fresh

	var (
		wg       sync.WaitGroup
		failed   atomic.Uint64
		firstErr atomic.Pointer[error]
		mu       sync.Mutex
		lats     []time.Duration
	)
	deadline := time.Now().Add(duration)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sid, err := httpSession(base)
			if err != nil {
				failed.Add(1)
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			own := make([]time.Duration, 0, 256)
			for i := c; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				t0 := time.Now()
				if _, err := httpQuery(base, sid, q.sql); err != nil {
					failed.Add(1)
					e := fmt.Errorf("%s: %w", q.label, err)
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				own = append(own, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, own...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	r.totals = r.totals.Add(eng.Metrics())
	if ep := firstErr.Load(); ep != nil {
		return nil, nil, fmt.Errorf("bench: serve-http %s: %d requests failed, first: %w", id, failed.Load(), *ep)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}

	reg := eng.Observability().Registry()
	hits, misses := counterValue(reg, "rasql_plan_cache_hits_total"), counterValue(reg, "rasql_plan_cache_misses_total")
	res := &ServeResult{
		Clients:         clients,
		Duration:        elapsed,
		Queries:         uint64(len(lats)),
		QPS:             float64(len(lats)) / elapsed.Seconds(),
		P50:             pct(0.50),
		P95:             pct(0.95),
		P99:             pct(0.99),
		ColdP50:         coldP50,
		WarmP50:         warmP50,
		PlanCacheHits:   hits,
		PlanCacheMisses: misses,
		Registry:        reg,
	}
	t := &Table{
		ID:    "ServeHTTP " + id,
		Title: fmt.Sprintf("End-to-end HTTP clients (%d) on the %s workload", clients, id),
		Columns: []string{"workload", "clients", "duration", "queries", "qps",
			"p50", "p95", "p99", "cold p50", "warm p50", "cache hits", "cache misses"},
		Rows: [][]string{{
			fmt.Sprintf("%s RMAT-%dM/%d", id, paperM, r.cfg.Scale),
			fmt.Sprint(clients), elapsed.Round(time.Millisecond).String(),
			fmt.Sprint(res.Queries), fmt.Sprintf("%.1f", res.QPS),
			fmtDur(res.P50), fmtDur(res.P95), fmtDur(res.P99),
			fmtDur(res.ColdP50), fmtDur(res.WarmP50),
			fmt.Sprint(hits), fmt.Sprint(misses),
		}},
		Notes: []string{
			"latencies are client-observed over loopback HTTP: admission, plan cache, execution, JSON",
			"cold/warm p50 measure one probe statement sequentially on the plan-cache miss vs hit path",
		},
	}
	return t, res, nil
}

// counterValue reads one counter from the registry (0 when absent).
func counterValue(reg *rasql.MetricsRegistry, name string) int64 {
	if c := reg.LookupCounter(name); c != nil {
		return c.Value()
	}
	return 0
}

// httpSession creates a server session and returns its id.
func httpSession(base string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("POST /v1/sessions: %s: %s", resp.Status, body)
	}
	var out struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.SessionID, nil
}

// httpQuery posts one query (sid optional) and returns the row count.
func httpQuery(base, sid, sql string) (int, error) {
	body, err := json.Marshal(map[string]any{"sql": sql, "session_id": sid})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("POST /v1/query: %s: %s", resp.Status, msg)
	}
	var out struct {
		RowCount int `json:"row_count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.RowCount, nil
}
