package rasql_test

import (
	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

// exampleCase pairs one example query from queries/ with small input tables
// chosen so every plan shape (linear recursion, aggregates in the head,
// stratified epilogues, multi-table joins) is exercised.
//
// The table is shared by the parallel-stages invariance test and the chaos
// differential harness: any new example query added here is automatically
// covered by both.
type exampleCase struct {
	name   string
	query  string
	tables func() []*rasql.Relation
}

func exampleCases() []exampleCase {
	return []exampleCase{
		{"sssp", queries.SSSP, func() []*rasql.Relation { return []*rasql.Relation{weightedEdges()} }},
		{"apsp", queries.APSP, func() []*rasql.Relation { return []*rasql.Relation{weightedEdges()} }},
		{"tc", queries.TC, func() []*rasql.Relation {
			return []*rasql.Relation{plainEdges([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 1}, [2]int64{3, 4})}
		}},
		{"reach", queries.Reach, func() []*rasql.Relation {
			return []*rasql.Relation{plainEdges([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 1}, [2]int64{4, 5})}
		}},
		{"reach-stratified", queries.ReachStratified, func() []*rasql.Relation {
			return []*rasql.Relation{plainEdges([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 1}, [2]int64{4, 5})}
		}},
		{"cc", queries.CC, func() []*rasql.Relation { return []*rasql.Relation{ccEdges()} }},
		{"cc-labels", queries.CCLabels, func() []*rasql.Relation { return []*rasql.Relation{ccEdges()} }},
		{"cc-stratified", queries.CCStratified, func() []*rasql.Relation { return []*rasql.Relation{ccEdges()} }},
		{"count-paths", queries.CountPaths, func() []*rasql.Relation {
			return []*rasql.Relation{plainEdges([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 4}, [2]int64{3, 4}, [2]int64{4, 5})}
		}},
		{"management", queries.Management, func() []*rasql.Relation {
			return []*rasql.Relation{relOf("report",
				rasql.NewSchema(rasql.Col("Emp", rasql.KindInt), rasql.Col("Mgr", rasql.KindInt)),
				iRow(2, 1), iRow(3, 1), iRow(4, 2))}
		}},
		{"mlm", queries.MLM, func() []*rasql.Relation {
			sales := relOf("sales",
				rasql.NewSchema(rasql.Col("M", rasql.KindInt), rasql.Col("P", rasql.KindFloat)),
				rasql.Row{rasql.Int(1), rasql.Float(100)},
				rasql.Row{rasql.Int(2), rasql.Float(200)},
				rasql.Row{rasql.Int(3), rasql.Float(300)})
			sponsor := relOf("sponsor",
				rasql.NewSchema(rasql.Col("M1", rasql.KindInt), rasql.Col("M2", rasql.KindInt)),
				iRow(1, 2), iRow(2, 3))
			return []*rasql.Relation{sales, sponsor}
		}},
		{"delivery", queries.Delivery, bomTables},
		{"delivery-stratified", queries.DeliveryStratified, bomTables},
		{"sg", queries.SG, func() []*rasql.Relation {
			return []*rasql.Relation{relOf("rel",
				rasql.NewSchema(rasql.Col("Parent", rasql.KindInt), rasql.Col("Child", rasql.KindInt)),
				iRow(1, 2), iRow(1, 3), iRow(2, 4), iRow(3, 5))}
		}},
		{"coalesce", queries.Coalesce, func() []*rasql.Relation {
			return []*rasql.Relation{relOf("inter",
				rasql.NewSchema(rasql.Col("S", rasql.KindInt), rasql.Col("E", rasql.KindInt)),
				iRow(1, 3), iRow(2, 4), iRow(6, 7))}
		}},
		{"party", queries.Party, partyTables},
		{"company-control", queries.CompanyControl, func() []*rasql.Relation {
			s := func(by, of string, p int64) rasql.Row {
				return rasql.Row{rasql.Str(by), rasql.Str(of), rasql.Int(p)}
			}
			return []*rasql.Relation{relOf("shares",
				rasql.NewSchema(rasql.Col("By", rasql.KindString), rasql.Col("Of", rasql.KindString), rasql.Col("Percent", rasql.KindInt)),
				s("a", "b", 60), s("a", "c", 30), s("b", "c", 25))}
		}},
	}
}
