// Package queries is the library of RaSQL programs from the paper: the
// classical graph algorithms of Section 4 and Appendix C, the complex
// analytics queries of Section 8.2, and the stratified counterparts used in
// Figure 1. Each constant is runnable verbatim against an engine whose
// catalog holds the documented base tables.
package queries

// SSSP computes single-source shortest paths from a source node (paper
// Example 1). Base table: edge(Src int, Dst int, Cost double). The source
// node is 1; use SSSPFrom for other sources.
const SSSP = `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, path.Cost + edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path`

// CC counts connected components by label propagation (paper Example 2).
// Base table: edge(Src int, Dst int), loaded with both edge directions.
const CC = `
WITH recursive cc (Src, min() AS CmpId) AS
    (SELECT Src, Src FROM edge) UNION
    (SELECT edge.Dst, cc.CmpId FROM cc, edge
     WHERE cc.Src = edge.Src)
SELECT count(distinct cc.CmpId) FROM cc`

// CCLabels is CC but returning each node's component label instead of the
// component count (used to validate against union-find ground truth).
const CCLabels = `
WITH recursive cc (Src, min() AS CmpId) AS
    (SELECT Src, Src FROM edge) UNION
    (SELECT edge.Dst, cc.CmpId FROM cc, edge
     WHERE cc.Src = edge.Src)
SELECT Src, CmpId FROM cc`

// CountPaths counts paths from node 1 to every node of a DAG (paper
// Example 3). Base table: edge(Src int, Dst int).
const CountPaths = `
WITH recursive cpaths (Dst, sum() AS Cnt) AS
    (SELECT 1, 1) UNION
    (SELECT edge.Dst, cpaths.Cnt FROM cpaths, edge
     WHERE cpaths.Dst = edge.Src)
SELECT Dst, Cnt FROM cpaths`

// Management counts each manager's direct and indirect subordinates (paper
// Example 4). Base table: report(Emp int, Mgr int).
const Management = `
WITH recursive empCount (Mgr, count() AS Cnt) AS
    (SELECT report.Emp, 1 FROM report) UNION
    (SELECT report.Mgr, empCount.Cnt
     FROM empCount, report
     WHERE empCount.Mgr = report.Emp)
SELECT Mgr, Cnt FROM empCount`

// MLM computes multi-level-marketing bonuses (paper Example 5). Base
// tables: sales(M int, P double), sponsor(M1 int, M2 int).
const MLM = `
WITH recursive bonus(M, sum() as B) AS
    (SELECT M, P*0.1 FROM sales) UNION
    (SELECT sponsor.M1, bonus.B*0.5 FROM bonus, sponsor
     WHERE bonus.M = sponsor.M2)
SELECT M, B FROM bonus`

// Coalesce merges overlapping intervals (paper Example 6). Base table:
// inter(S int, E int).
const Coalesce = `
CREATE VIEW lstart(T) AS
    (SELECT a.S FROM inter a, inter b
     WHERE a.S <= b.E
     GROUP BY a.S HAVING a.S = min(b.S));
WITH recursive coal (S, max() AS E) AS
    (SELECT lstart.T, inter.E FROM lstart, inter
     WHERE lstart.T = inter.S) UNION
    (SELECT coal.S, inter.E FROM coal, inter
     WHERE coal.S <= inter.S AND inter.S <= coal.E)
SELECT S, E FROM coal`

// Party computes party attendance by mutual recursion (paper Example 7):
// a person attends iff they organize or at least three of their friends
// attend. Base tables: organizer(OrgName string), friend(Pname string,
// Fname string).
const Party = `
WITH recursive attend(Person) AS
    (SELECT OrgName FROM organizer) UNION
    (SELECT Name FROM cntfriends WHERE Ncount >= 3),
recursive cntfriends(Name, count() AS Ncount) AS
    (SELECT friend.FName, friend.Pname
     FROM attend, friend
     WHERE attend.Person = friend.Pname)
SELECT Person FROM attend`

// CompanyControl computes transitive corporate control via mutual
// recursion over a sum aggregate (paper Example 8). Base table:
// shares(By string, Of string, Percent int).
const CompanyControl = `
WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS
    (SELECT By, Of, Percent FROM shares) UNION
    (SELECT control.Com1, cshares.OfCom, cshares.Tot
     FROM control, cshares
     WHERE control.Com2 = cshares.ByCom),
recursive control(Com1, Com2) AS
    (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50)
SELECT ByCom, OfCom, Tot FROM cshares`

// SG finds same-generation node pairs (paper Example 9). Base table:
// rel(Parent int, Child int).
const SG = `
WITH recursive sg (X, Y) AS
    (SELECT a.Child, b.Child FROM rel a, rel b
     WHERE a.Parent = b.Parent AND a.Child <> b.Child)
    UNION
    (SELECT a.Child, b.Child FROM rel a, sg, rel b
     WHERE a.Parent = sg.X AND b.Parent = sg.Y)
SELECT X, Y FROM sg`

// Reach computes the nodes reachable from node 1 (paper Example 10). Base
// table: edge(Src int, Dst int).
const Reach = `
WITH recursive reach (Dst) AS
    (SELECT 1) UNION
    (SELECT edge.Dst FROM reach, edge
     WHERE reach.Dst = edge.Src)
SELECT Dst FROM reach`

// APSP computes all-pairs shortest paths (paper Example 11). Base table:
// edge(Src int, Dst int, Cost double).
const APSP = `
WITH recursive path (Src, Dst, min() AS Cost) AS
    (SELECT Src, Dst, Cost FROM edge) UNION
    (SELECT path.Src, edge.Dst, path.Cost + edge.Cost
     FROM path, edge WHERE path.Dst = edge.Src)
SELECT Src, Dst, Cost FROM path`

// TC computes the transitive closure (paper Section 6). Base table:
// edge(Src int, Dst int).
const TC = `
WITH recursive tc (Src, Dst) AS
    (SELECT Src, Dst FROM edge) UNION
    (SELECT tc.Src, edge.Dst FROM tc, edge
     WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc`

// Delivery is the Bill-of-Materials days-till-delivery query in RaSQL's
// endo-max form (paper Q2). Base tables: basic(Part int, Days int),
// assbl(Part int, Spart int).
const Delivery = `
WITH recursive waitfor(Part, max() as Days) AS
    (SELECT Part, Days FROM basic) UNION
    (SELECT assbl.Part, waitfor.Days
     FROM assbl, waitfor
     WHERE assbl.Spart = waitfor.Part)
SELECT Part, Days FROM waitfor`

// DeliveryStratified is the SQL:99 stratified form of Delivery (paper Q1):
// the max is applied after the (set-semantics) recursion completes.
const DeliveryStratified = `
WITH recursive waitfor(Part, Days) AS
    (SELECT Part, Days FROM basic) UNION
    (SELECT assbl.Part, waitfor.Days
     FROM assbl, waitfor
     WHERE assbl.Spart = waitfor.Part)
SELECT Part, max(Days) FROM waitfor GROUP BY Part`

// SSSPStratified is the stratified counterpart of SSSP used in Figure 1;
// on cyclic graphs its recursion does not terminate — the engine's row and
// iteration guards abort it, matching the paper's footnote.
const SSSPStratified = `
WITH recursive path (Dst, Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, path.Cost + edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src)
SELECT Dst, min(Cost) FROM path GROUP BY Dst`

// CCStratified is the stratified counterpart of CC used in Figure 1: the
// recursion carries every propagated label and the min applies at the end.
const CCStratified = `
WITH recursive cc (Src, CmpId) AS
    (SELECT Src, Src FROM edge) UNION
    (SELECT edge.Dst, cc.CmpId FROM cc, edge
     WHERE cc.Src = edge.Src),
labels(Src, M) AS
    (SELECT Src, min(CmpId) FROM cc GROUP BY Src)
SELECT count(distinct M) FROM labels`

// ReachStratified is REACH without aggregates (REACH has none to begin
// with); it is listed for completeness of the Figure 1 comparison set.
const ReachStratified = Reach
